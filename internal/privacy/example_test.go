package privacy_test

import (
	"fmt"
	"log"
	"time"

	"repro/internal/geo"
	"repro/internal/privacy"
	"repro/internal/trace"
)

// Example_mobilityMarkovChain builds an MMC from a commuting pattern
// and predicts the next place — the §VIII mobility-model extension.
func Example_mobilityMarkovChain() {
	home := geo.Point{Lat: 39.90, Lon: 116.40}
	work := geo.Point{Lat: 39.95, Lon: 116.45}
	tr := &trace.Trail{User: "alice"}
	ts := time.Unix(1_200_000_000, 0).UTC()
	// Two weeks of home -> work -> home days.
	for day := 0; day < 14; day++ {
		for _, p := range []geo.Point{home, work, home} {
			tr.Traces = append(tr.Traces, trace.Trace{User: "alice", Point: p, Time: ts})
			ts = ts.Add(8 * time.Hour)
		}
	}
	m, err := privacy.BuildMMC(tr, []geo.Point{home, work}, 50)
	if err != nil {
		log.Fatal(err)
	}
	next, p, err := m.PredictNext(0) // currently at home
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("from state 0 (home): next=%d p=%.2f\n", next, p)
	// Output:
	// from state 0 (home): next=1 p=1.00
}

// Example_gaussianMask shows the simplest geo-sanitization mechanism:
// zero-mean noise on every coordinate, with the utility cost measured.
func Example_gaussianMask() {
	tr := trace.Trail{User: "alice"}
	for i := 0; i < 100; i++ {
		tr.Traces = append(tr.Traces, trace.Trace{
			User:  "alice",
			Point: geo.Point{Lat: 39.9, Lon: 116.4},
			Time:  time.Unix(int64(1_200_000_000+i*60), 0),
		})
	}
	ds := &trace.Dataset{Trails: []trace.Trail{tr}}

	masked := privacy.GaussianMask{SigmaMeters: 100, Seed: 7}.Sanitize(ds)
	rep := privacy.MeasureUtility(ds, masked)
	fmt.Printf("retention=%.0f%% distortion in (10m, 300m): %v\n",
		rep.Retention*100, rep.MeanDistortionMeters > 10 && rep.MeanDistortionMeters < 300)
	// Output:
	// retention=100% distortion in (10m, 300m): true
}
