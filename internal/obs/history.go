package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// HistoryDir is the directory (DFS or local) job records are stored
// under, mirroring Hadoop's job-history server layout.
const HistoryDir = "_history"

// FS is the minimal file-store surface the history needs.
// *dfs.FileSystem satisfies it structurally; DirFS adapts a local
// directory so records survive the in-process DFS.
type FS interface {
	// Create writes a new file; it fails if path already exists.
	// localNode is the writing datanode identity ("" for clients).
	Create(path string, data []byte, localNode string) error
	// List returns the sorted paths of files under the dir prefix.
	List(dir string) []string
	// ReadAll returns a file's full contents.
	ReadAll(path string) ([]byte, error)
	// Delete removes a file. Deleting a missing path is an error.
	Delete(path string) error
}

// AttemptRecord describes one task attempt for the job history: which
// node ran it, when (as offsets from job submission), how it ended and
// with what data locality. It is the unit the timeline renders.
type AttemptRecord struct {
	// Task is the owning task ("map-0007", "reduce-0000").
	Task string `json:"task"`
	// Phase is "map" or "reduce".
	Phase string `json:"phase"`
	// Attempt is the 0-based attempt number.
	Attempt int `json:"attempt"`
	// Node is the cluster node that executed the attempt.
	Node string `json:"node"`
	// StartMs/EndMs are millisecond offsets from job submission.
	StartMs int64 `json:"start_ms"`
	EndMs   int64 `json:"end_ms"`
	// Locality is the placement class of winning map attempts.
	Locality string `json:"locality,omitempty"`
	// Backup marks speculative attempts.
	Backup bool `json:"backup,omitempty"`
	// Status is "succeeded", "failed" or "killed" (speculative loser).
	Status string `json:"status"`
	// Error is the failure reason for failed attempts.
	Error string `json:"error,omitempty"`
}

// JobRecord is one persisted job execution — the engine's Report plus
// submission time and the per-attempt records, i.e. what the Hadoop
// job-history server keeps per job.
type JobRecord struct {
	// Seq orders records within a history store.
	Seq int `json:"seq"`
	// Job is the job name.
	Job string `json:"job"`
	// StartUnixMs is the job submission time (Unix milliseconds).
	StartUnixMs int64 `json:"start_unix_ms"`
	// WallMs is the total job wall time in milliseconds.
	WallMs int64 `json:"wall_ms"`
	// MapTasks and ReduceTasks are the task counts.
	MapTasks    int `json:"map_tasks"`
	ReduceTasks int `json:"reduce_tasks"`
	// PhaseMs maps phase name to wall milliseconds.
	PhaseMs map[string]int64 `json:"phase_ms"`
	// Counters are the job counters (group → name → value).
	Counters map[string]map[string]int64 `json:"counters,omitempty"`
	// Attempts are all task attempts, winning and losing.
	Attempts []AttemptRecord `json:"attempts,omitempty"`
	// Nodes are the distinct nodes that ran attempts, sorted.
	Nodes []string `json:"nodes,omitempty"`
}

// Start returns the submission time.
func (r JobRecord) Start() time.Time { return time.UnixMilli(r.StartUnixMs) }

// History persists finished-job records under HistoryDir in an FS —
// the job-history server role. Safe for concurrent use.
type History struct {
	mu      sync.Mutex
	fs      FS
	seq     int // next sequence number; 0 = not yet initialised
	maxJobs int // 0 = unbounded

	pruneErrs    int   // prune deletions that failed
	lastPruneErr error // most recent prune failure
}

// NewHistory creates a history store over the given backend.
func NewHistory(fs FS) *History { return &History{fs: fs} }

// SetMaxJobs bounds the store to the n most recent records: each Save
// beyond the bound deletes the oldest stored record. n <= 0 means
// unbounded. Only finished jobs ever reach Save, so pruning can never
// touch a running job.
func (h *History) SetMaxJobs(n int) {
	h.mu.Lock()
	h.maxJobs = n
	h.mu.Unlock()
}

// recPath builds "_history/000042-jobname.json". Slashes in job names
// are flattened so every record stays directly under HistoryDir.
func recPath(seq int, job string) string {
	return fmt.Sprintf("%s/%06d-%s.json", HistoryDir, seq, strings.ReplaceAll(job, "/", "_"))
}

// nextSeqLocked scans existing records once to continue numbering
// across processes (the local-dir backend outlives the process).
func (h *History) nextSeqLocked() int {
	if h.seq == 0 {
		max := 0
		for _, p := range h.fs.List(HistoryDir) {
			base := filepath.Base(p)
			if i := strings.IndexByte(base, '-'); i > 0 {
				if n, err := strconv.Atoi(base[:i]); err == nil && n > max {
					max = n
				}
			}
		}
		h.seq = max + 1
	}
	s := h.seq
	h.seq++
	return s
}

// Save assigns the record a sequence number and persists it, returning
// the path written.
func (h *History) Save(rec JobRecord) (string, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	rec.Seq = h.nextSeqLocked()
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return "", err
	}
	path := recPath(rec.Seq, rec.Job)
	if err := h.fs.Create(path, data, ""); err != nil {
		return "", fmt.Errorf("obs: saving history record: %v", err)
	}
	h.pruneLocked()
	return path, nil
}

// pruneLocked enforces maxJobs by deleting the lowest-sequence records.
// Mirror backends may miss some paths; a failed deletion must not fail
// the Save that triggered it (the next prune retries), so failures are
// recorded for PruneErrors instead.
func (h *History) pruneLocked() {
	if h.maxJobs <= 0 {
		return
	}
	paths := h.fs.List(HistoryDir)
	// List is sorted and names embed a zero-padded sequence number, so
	// lexical order is sequence order.
	for len(paths) > h.maxJobs {
		if err := h.fs.Delete(paths[0]); err != nil {
			h.pruneErrs++
			h.lastPruneErr = err
		}
		paths = paths[1:]
	}
}

// PruneErrors reports how many prune deletions have failed so far and
// the most recent failure, so operators can notice a store that is no
// longer honouring its maxJobs bound.
func (h *History) PruneErrors() (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.pruneErrs, h.lastPruneErr
}

// List returns every stored record ordered by sequence number.
// Unparseable files are skipped rather than failing the listing.
func (h *History) List() ([]JobRecord, error) {
	var out []JobRecord
	for _, p := range h.fs.List(HistoryDir) {
		data, err := h.fs.ReadAll(p)
		if err != nil {
			continue
		}
		var rec JobRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// Find returns the most recent record whose job name matches, or whose
// sequence number equals the numeric form of key.
func (h *History) Find(key string) (JobRecord, bool) {
	recs, err := h.List()
	if err != nil {
		return JobRecord{}, false
	}
	wantSeq, seqErr := strconv.Atoi(key)
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Job == key || (seqErr == nil && recs[i].Seq == wantSeq) {
			return recs[i], true
		}
	}
	return JobRecord{}, false
}

// dirFS stores files under a local root directory, mapping DFS-style
// slash paths to the local file tree.
type dirFS struct {
	root string
}

// NewDirFS returns an FS persisting into the local directory root
// (created on demand). It lets job history survive the in-process DFS,
// so `gepeto history` can inspect runs after the cluster is gone.
func NewDirFS(root string) FS { return dirFS{root: root} }

func (d dirFS) local(path string) string {
	return filepath.Join(d.root, filepath.FromSlash(path))
}

func (d dirFS) Create(path string, data []byte, _ string) error {
	full := d.local(path)
	if _, err := os.Stat(full); err == nil {
		return fmt.Errorf("obs: %s already exists", path)
	}
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return err
	}
	return os.WriteFile(full, data, 0o644)
}

func (d dirFS) List(dir string) []string {
	full := d.local(dir)
	entries, err := os.ReadDir(full)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		out = append(out, dir+"/"+e.Name())
	}
	sort.Strings(out)
	return out
}

func (d dirFS) ReadAll(path string) ([]byte, error) {
	return os.ReadFile(d.local(path))
}

func (d dirFS) Delete(path string) error {
	return os.Remove(d.local(path))
}

// TeeFS writes to both backends and reads from their union (primary
// wins), so records live in the simulated DFS for in-process diffing
// and in a local directory for post-mortem inspection. Mirror (the
// secondary backend) failures never fail the caller but are recorded
// for MirrorErrors.
type TeeFS struct {
	primary, secondary FS

	mu            sync.Mutex
	mirrorErrs    int
	lastMirrorErr error
}

// Tee combines two backends: Create writes to both, List merges, and
// ReadAll falls back from primary to secondary.
func Tee(primary, secondary FS) *TeeFS {
	return &TeeFS{primary: primary, secondary: secondary}
}

// noteMirrorErr records a secondary-backend failure.
func (t *TeeFS) noteMirrorErr(err error) {
	t.mu.Lock()
	t.mirrorErrs++
	t.lastMirrorErr = err
	t.mu.Unlock()
}

// MirrorErrors reports how many secondary-backend operations have
// failed and the most recent failure, so a silently broken mirror is
// still observable.
func (t *TeeFS) MirrorErrors() (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.mirrorErrs, t.lastMirrorErr
}

// Create implements FS.
func (t *TeeFS) Create(path string, data []byte, localNode string) error {
	if err := t.primary.Create(path, data, localNode); err != nil {
		return err
	}
	// The secondary may already hold the path from an earlier process;
	// renumbering via List makes that rare, but don't fail the job on
	// a mirror collision.
	if err := t.secondary.Create(path, data, localNode); err != nil {
		t.noteMirrorErr(err)
	}
	return nil
}

// List implements FS.
func (t *TeeFS) List(dir string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range append(t.primary.List(dir), t.secondary.List(dir)...) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// ReadAll implements FS.
func (t *TeeFS) ReadAll(path string) ([]byte, error) {
	if data, err := t.primary.ReadAll(path); err == nil {
		return data, nil
	}
	return t.secondary.ReadAll(path)
}

// Delete implements FS.
func (t *TeeFS) Delete(path string) error {
	err := t.primary.Delete(path)
	// The mirror may legitimately lack the path (or hold extras from an
	// earlier process); deleting there is best-effort but recorded.
	if serr := t.secondary.Delete(path); serr != nil {
		t.noteMirrorErr(serr)
	}
	return err
}
