package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestWriteMetricPoints renders a mixed federated-style point set and
// checks grouping, one TYPE line per family, histogram expansion, and
// float-gauge formatting.
func TestWriteMetricPoints(t *testing.T) {
	points := []MetricPoint{
		{Name: "cluster_worker_heartbeat_age_seconds", Type: "gauge",
			Labels: map[string]string{"worker": "n1"}, FValue: 0.25},
		{Name: "worker_tasks_total", Type: "counter",
			Labels: map[string]string{"worker": "n2", "status": "succeeded"}, Value: 3},
		{Name: "worker_tasks_total", Type: "counter",
			Labels: map[string]string{"worker": "n1", "status": "succeeded"}, Value: 5},
		{Name: "rpc_server_latency_seconds", Type: "histogram",
			Labels: map[string]string{"worker": "n1", "method": "jt.heartbeat"},
			Count:  3, Sum: 0.012,
			Buckets: []BucketPoint{{Le: 0.005, Cum: 1}, {Le: 0.05, Cum: 3}, {Le: math.Inf(1), Cum: 3}}},
	}
	var sb strings.Builder
	WriteMetricPoints(&sb, points)
	out := sb.String()

	if n := strings.Count(out, "# TYPE worker_tasks_total counter"); n != 1 {
		t.Errorf("TYPE lines for worker_tasks_total: %d, want 1\n%s", n, out)
	}
	for _, want := range []string{
		`cluster_worker_heartbeat_age_seconds{worker="n1"} 0.25`,
		`worker_tasks_total{status="succeeded",worker="n1"} 5`,
		`worker_tasks_total{status="succeeded",worker="n2"} 3`,
		`rpc_server_latency_seconds_bucket{method="jt.heartbeat",worker="n1",le="0.005"} 1`,
		`rpc_server_latency_seconds_bucket{method="jt.heartbeat",worker="n1",le="+Inf"} 3`,
		`rpc_server_latency_seconds_sum{method="jt.heartbeat",worker="n1"} 0.012`,
		`rpc_server_latency_seconds_count{method="jt.heartbeat",worker="n1"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Sorted by name then labels: n1 precedes n2 within the family.
	if i, j := strings.Index(out, `worker="n1"} 5`), strings.Index(out, `worker="n2"} 3`); i > j {
		t.Errorf("series not sorted by label set:\n%s", out)
	}
}

// TestBucketPointJSONRoundTrip checks the +Inf bound survives JSON —
// the federation ships snapshots over gob, but /metrics.json and the
// tests serialize them as JSON, which has no infinity literal.
func TestBucketPointJSONRoundTrip(t *testing.T) {
	in := []BucketPoint{{Le: 0.5, Cum: 2}, {Le: math.Inf(1), Cum: 7}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal with +Inf bound: %v", err)
	}
	if !strings.Contains(string(data), `"+Inf"`) {
		t.Fatalf("encoded buckets missing +Inf sentinel: %s", data)
	}
	var out []BucketPoint
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Le != 0.5 || out[0].Cum != 2 || !math.IsInf(out[1].Le, 1) || out[1].Cum != 7 {
		t.Fatalf("round trip = %+v", out)
	}
}
