package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// NewLevelLogger builds the structured stderr logger behind the CLI's
// -log-level flag. Levels are the slog names; "off" discards
// everything. An unknown level is an error, not a silent default: a
// typo'd -log-level on a cluster node would otherwise hide exactly the
// logs someone asked for.
func NewLevelLogger(level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	case "off":
		return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1})), nil
	default:
		return nil, fmt.Errorf("unknown log level %q (debug|info|warn|error|off)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}
