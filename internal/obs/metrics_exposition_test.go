package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramPrometheusExposition pins the exposition contract for
// histograms: cumulative buckets in ascending le order, an explicit
// +Inf bucket, then _sum and _count, with label values escaped the
// Prometheus way (backslash, quote, newline).
func TestHistogramPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("req_seconds", "Request latency.", []float64{0.1, 1, 10}, Labels{
		"path": `a"b\c` + "\nd",
	})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()

	wantLines := []string{
		`# HELP req_seconds Request latency.`,
		`# TYPE req_seconds histogram`,
		`req_seconds_bucket{path="a\"b\\c\nd",le="0.1"} 1`,
		`req_seconds_bucket{path="a\"b\\c\nd",le="1"} 3`,
		`req_seconds_bucket{path="a\"b\\c\nd",le="10"} 4`,
		`req_seconds_bucket{path="a\"b\\c\nd",le="+Inf"} 5`,
		`req_seconds_sum{path="a\"b\\c\nd"} 56.05`,
		`req_seconds_count{path="a\"b\\c\nd"} 5`,
	}
	// Order matters: buckets ascending, then sum, then count.
	rest := out
	for _, want := range wantLines {
		idx := strings.Index(rest, want)
		if idx < 0 {
			t.Fatalf("exposition missing or out of order: %q\nremaining:\n%s\nfull:\n%s", want, rest, out)
		}
		rest = rest[idx+len(want):]
	}
}

// TestHistogramExpositionOrdersSeries checks that families and series
// render in deterministic sorted order regardless of registration
// order, for both text exposition and the JSON snapshot.
func TestHistogramExpositionOrdersSeries(t *testing.T) {
	reg := NewRegistry()
	// Register intentionally out of alphabetical order.
	reg.Histogram("zz_seconds", "", []float64{1}, Labels{"phase": "reduce"}).Observe(2)
	reg.Histogram("zz_seconds", "", []float64{1}, Labels{"phase": "map"}).Observe(0.5)
	reg.Counter("aa_total", "", nil).Inc()

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	aa := strings.Index(out, "aa_total")
	mapSeries := strings.Index(out, `zz_seconds_bucket{phase="map",le="1"}`)
	reduceSeries := strings.Index(out, `zz_seconds_bucket{phase="reduce",le="1"}`)
	if !(aa >= 0 && aa < mapSeries && mapSeries < reduceSeries) {
		t.Fatalf("series out of sorted order (aa=%d map=%d reduce=%d):\n%s", aa, mapSeries, reduceSeries, out)
	}

	snap := reg.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d points, want 3", len(snap))
	}
	if snap[0].Name != "aa_total" || snap[1].Labels["phase"] != "map" || snap[2].Labels["phase"] != "reduce" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	if snap[2].Count != 1 || snap[2].Sum != 2 {
		t.Fatalf("histogram point wrong: %+v", snap[2])
	}
	// The snapshot must stay JSON-serializable with stable output.
	j1, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(reg.Snapshot())
	if string(j1) != string(j2) {
		t.Fatalf("snapshot not deterministic:\n%s\n%s", j1, j2)
	}
}

// TestHistogramConcurrentObserveAndExpose is the -race test: writers
// Observe while readers render the exposition and snapshot. The final
// count must equal the writes, proving no update was lost or torn.
func TestHistogramConcurrentObserveAndExpose(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("conc_seconds", "", []float64{0.5}, nil)

	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	stopReaders := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
					var sb strings.Builder
					reg.WritePrometheus(&sb)
					reg.Snapshot()
				}
			}
		}()
	}
	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(float64(i%2) + 0.25)
			}
		}(w)
	}
	writerWg.Wait()
	close(stopReaders)
	wg.Wait()

	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("lost observations: count %d, want %d", got, writers*perWriter)
	}
}

// TestRuntimeSamplerMonotonicGauges covers the monotonic counters the
// sampler exports so scrapers can derive rates: cumulative allocation
// and user CPU time must be populated and never decrease between
// samples.
func TestRuntimeSamplerMonotonicGauges(t *testing.T) {
	reg := NewRegistry()
	stop := StartRuntimeSampler(reg, 100*time.Millisecond)
	defer stop()

	totalAlloc := reg.Gauge("go_total_alloc_bytes", "", nil)
	mallocs := reg.Gauge("go_mallocs_total", "", nil)
	cpuUser := reg.Gauge("go_cpu_user_ns", "", nil)

	first := totalAlloc.Value()
	if first <= 0 {
		t.Fatalf("go_total_alloc_bytes = %d after first sample, want > 0", first)
	}
	if mallocs.Value() <= 0 {
		t.Fatalf("go_mallocs_total = %d after first sample, want > 0", mallocs.Value())
	}
	if cpuUser.Value() < 0 {
		t.Fatalf("go_cpu_user_ns = %d, want >= 0", cpuUser.Value())
	}

	// Allocate until the next tick observes growth; cumulative counters
	// must ratchet, unlike go_heap_alloc_bytes which may shrink.
	deadline := time.Now().Add(5 * time.Second)
	var sink [][]byte
	for totalAlloc.Value() == first {
		sink = append(sink, make([]byte, 1<<16))
		if len(sink) > 512 {
			sink = sink[:0]
		}
		if time.Now().After(deadline) {
			t.Fatal("go_total_alloc_bytes never advanced")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := totalAlloc.Value(); got < first {
		t.Fatalf("go_total_alloc_bytes went backwards: %d -> %d", first, got)
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	for _, name := range []string{"go_total_alloc_bytes", "go_mallocs_total", "go_cpu_user_ns"} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("exposition missing %s", name)
		}
	}
}
