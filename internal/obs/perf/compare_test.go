package perf

import (
	"strings"
	"testing"
)

func twoRecords() (*Record, *Record) {
	old := &Record{
		Schema: SchemaVersion, ID: "BENCH_0001", Scale: 64, Seed: 1,
		Workloads: []WorkloadResult{
			{Name: "sampling", WallUs: 100_000, Records: 1000, RecordsPerSec: 10_000},
			{Name: "kmeans-iter", WallUs: 200_000, Records: 1000, RecordsPerSec: 5_000,
				Phases: []Phase{{Phase: "shuffle", DurUs: 150_000, Pct: 75}}},
			{Name: "gone", WallUs: 50_000, Records: 10, RecordsPerSec: 200},
		},
	}
	new := &Record{
		Schema: SchemaVersion, ID: "BENCH_0002", Scale: 64, Seed: 1,
		Workloads: []WorkloadResult{
			{Name: "sampling", WallUs: 110_000, Records: 1000, RecordsPerSec: 9_090,
				Phases: []Phase{{Phase: "map", DurUs: 80_000, Pct: 73}}},
			{Name: "kmeans-iter", WallUs: 500_000, Records: 1000, RecordsPerSec: 2_000,
				Phases: []Phase{{Phase: "shuffle", DurUs: 400_000, Pct: 80}}},
			{Name: "fresh", WallUs: 1_000, Records: 5, RecordsPerSec: 5_000},
		},
	}
	return old, new
}

func TestCompareFlagsRegression(t *testing.T) {
	old, new := twoRecords()
	cmp := Compare(old, new, CompareOptions{})
	if cmp.Threshold != DefaultThreshold || cmp.SlackUs != DefaultSlackUs {
		t.Fatalf("defaults not applied: %+v", cmp)
	}
	byName := map[string]CompareRow{}
	for _, r := range cmp.Rows {
		byName[r.Name] = r
	}
	// 10% slower is inside the 40% threshold.
	if r := byName["sampling"]; r.Regressed || r.WallDelta < 0.09 || r.WallDelta > 0.11 {
		t.Fatalf("sampling row wrong: %+v", r)
	}
	// 2.5x slower is a regression.
	if r := byName["kmeans-iter"]; !r.Regressed {
		t.Fatalf("kmeans-iter not flagged: %+v", r)
	}
	if r := byName["gone"]; r.Note != "removed" || r.Regressed {
		t.Fatalf("removed row wrong: %+v", r)
	}
	if r := byName["fresh"]; r.Note != "added" || r.Regressed {
		t.Fatalf("added row wrong: %+v", r)
	}
	if regs := cmp.Regressions(); len(regs) != 1 || regs[0].Name != "kmeans-iter" {
		t.Fatalf("Regressions() = %+v", regs)
	}
}

func TestCompareSelfIsQuiet(t *testing.T) {
	old, _ := twoRecords()
	if regs := Compare(old, old, CompareOptions{}).Regressions(); len(regs) != 0 {
		t.Fatalf("self-compare regressed: %+v", regs)
	}
}

func TestCompareSlackAbsorbsTinyWalls(t *testing.T) {
	old := &Record{Schema: SchemaVersion, Scale: 64, Seed: 1,
		Workloads: []WorkloadResult{{Name: "tiny", WallUs: 200, RecordsPerSec: 1e6}}}
	new := &Record{Schema: SchemaVersion, Scale: 64, Seed: 1,
		Workloads: []WorkloadResult{{Name: "tiny", WallUs: 4_000, RecordsPerSec: 5e4}}}
	// 20x slower, but still under the 5ms absolute slack: noise, not signal.
	if regs := Compare(old, new, CompareOptions{}).Regressions(); len(regs) != 0 {
		t.Fatalf("slack did not absorb micro-wall jitter: %+v", regs)
	}
	// With slack disabled to 1us, the same delta is a regression.
	if regs := Compare(old, new, CompareOptions{SlackUs: 1}).Regressions(); len(regs) != 1 {
		t.Fatalf("regression not flagged without slack: %+v", regs)
	}
}

func TestCompareCrossScaleUsesThroughput(t *testing.T) {
	old := &Record{Schema: SchemaVersion, Scale: 64, Seed: 1,
		Workloads: []WorkloadResult{
			{Name: "a", WallUs: 400_000, Records: 32_000, RecordsPerSec: 80_000},
			{Name: "b", WallUs: 400_000, Records: 32_000, RecordsPerSec: 80_000},
		}}
	new := &Record{Schema: SchemaVersion, Scale: 256, Seed: 1,
		Workloads: []WorkloadResult{
			// Wall is 4x smaller because the corpus is 4x smaller;
			// throughput holds, so no regression.
			{Name: "a", WallUs: 100_000, Records: 8_000, RecordsPerSec: 80_000},
			// Throughput collapsed 60%: regression even though wall shrank.
			{Name: "b", WallUs: 260_000, Records: 8_000, RecordsPerSec: 30_769},
		}}
	cmp := Compare(old, new, CompareOptions{})
	regs := cmp.Regressions()
	if len(regs) != 1 || regs[0].Name != "b" {
		t.Fatalf("cross-scale compare wrong: %+v", regs)
	}
	for _, r := range cmp.Rows {
		if r.SameScale {
			t.Fatalf("row %s marked SameScale across scales", r.Name)
		}
		if !strings.Contains(r.Note, "throughput") {
			t.Fatalf("row %s missing throughput note: %+v", r.Name, r)
		}
	}
}

func TestCompareCrossScaleNoBaselineThroughput(t *testing.T) {
	// A baseline row with zero recorded throughput used to sail through
	// the cross-scale compare as "ok" (delta 0 never trips the
	// threshold). It must be called out as non-comparable instead.
	old := &Record{Schema: SchemaVersion, Scale: 64, Seed: 1,
		Workloads: []WorkloadResult{
			{Name: "mute", WallUs: 400_000, Records: 0, RecordsPerSec: 0},
		}}
	new := &Record{Schema: SchemaVersion, Scale: 256, Seed: 1,
		Workloads: []WorkloadResult{
			{Name: "mute", WallUs: 900_000, Records: 8_000, RecordsPerSec: 8_888},
		}}
	cmp := Compare(old, new, CompareOptions{})
	if regs := cmp.Regressions(); len(regs) != 0 {
		t.Fatalf("non-comparable row flagged as regression: %+v", regs)
	}
	row := cmp.Rows[0]
	if !strings.Contains(row.Note, "no baseline throughput") {
		t.Fatalf("missing explicit non-comparable note: %+v", row)
	}
	var sb strings.Builder
	if err := cmp.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no baseline throughput") {
		t.Fatalf("markdown hides the non-comparable note:\n%s", sb.String())
	}
}

func TestWriteMarkdown(t *testing.T) {
	old, new := twoRecords()
	var sb strings.Builder
	if err := Compare(old, new, CompareOptions{}).WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"BENCH_0001 → BENCH_0002",
		"threshold 40%",
		"| workload | old wall | new wall |",
		"| sampling | 100.0ms | 110.0ms | +10.0% |",
		"**REGRESSED**",
		"shuffle 80%",
		"**REGRESSION** in 1 workload(s): kmeans-iter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	if err := Compare(old, old, CompareOptions{}).WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "No regressions beyond the noise threshold.") {
		t.Errorf("quiet compare missing all-clear line:\n%s", sb.String())
	}

	// Cross-scale compares must announce the throughput basis.
	crossOld := &Record{Schema: SchemaVersion, Scale: 64, Seed: 1}
	crossNew := &Record{Schema: SchemaVersion, Scale: 256, Seed: 1}
	sb.Reset()
	if err := Compare(crossOld, crossNew, CompareOptions{}).WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Scales differ") {
		t.Errorf("cross-scale markdown missing basis note:\n%s", sb.String())
	}
}
