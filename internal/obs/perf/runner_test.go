package perf

import (
	"math"
	"testing"
)

// suiteOnce runs the full suite at a reduced scale once per test
// binary; several tests inspect the same record.
var suiteRecord *Record

func runSuiteOnce(t *testing.T) *Record {
	t.Helper()
	if suiteRecord != nil {
		return suiteRecord
	}
	rec, err := RunSuite(SuiteOptions{
		Scale: 256, Seed: 1,
		Env:  Environment{GoVersion: "test"},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	suiteRecord = rec
	return rec
}

func TestRunSuiteCoversRegistry(t *testing.T) {
	rec := runSuiteOnce(t)
	names := WorkloadNames()
	if len(rec.Workloads) != len(names) {
		t.Fatalf("suite produced %d workloads, registry has %d", len(rec.Workloads), len(names))
	}
	for i, name := range names {
		w := rec.Workloads[i]
		if w.Name != name {
			t.Errorf("workload %d = %q, want registry order %q", i, w.Name, name)
		}
		if w.WallUs <= 0 {
			t.Errorf("%s: wall %dus, want > 0", name, w.WallUs)
		}
		if w.Records <= 0 {
			t.Errorf("%s: records %d, want > 0", name, w.Records)
		}
		if w.RecordsPerSec <= 0 {
			t.Errorf("%s: records/sec %f, want > 0", name, w.RecordsPerSec)
		}
		if w.AllocBytes <= 0 {
			t.Errorf("%s: alloc delta %d, want > 0", name, w.AllocBytes)
		}
	}
	if rec.Schema != SchemaVersion || rec.Scale != 256 || rec.Seed != 1 {
		t.Fatalf("record header wrong: %+v", rec)
	}
	if rec.SuiteWallMs <= 0 {
		t.Fatalf("suite wall %f", rec.SuiteWallMs)
	}
}

// TestPhaseAttributionSumsToWall pins the acceptance invariant: every
// workload's phase attributions sum to within 5% of its recorded wall,
// whether they came from the critical-path analyzer or a stopwatch.
func TestPhaseAttributionSumsToWall(t *testing.T) {
	rec := runSuiteOnce(t)
	for _, w := range rec.Workloads {
		if len(w.Phases) == 0 {
			t.Errorf("%s: no phase attribution", w.Name)
			continue
		}
		var sum int64
		var pctSum float64
		for _, p := range w.Phases {
			if p.DurUs < 0 {
				t.Errorf("%s: phase %s has negative duration %d", w.Name, p.Phase, p.DurUs)
			}
			sum += p.DurUs
			pctSum += p.Pct
		}
		if diff := math.Abs(float64(sum-w.WallUs)) / float64(w.WallUs); diff > 0.05 {
			t.Errorf("%s: phases sum to %dus vs wall %dus (%.1f%% off, limit 5%%)",
				w.Name, sum, w.WallUs, diff*100)
		}
		if math.Abs(pctSum-100) > 5 {
			t.Errorf("%s: phase percentages sum to %.1f, want ~100", w.Name, pctSum)
		}
	}
}

// TestSuiteCounters checks the engine counters the issue names land in
// the record: shuffle spill/merge activity and DFS I/O.
func TestSuiteCounters(t *testing.T) {
	rec := runSuiteOnce(t)
	for _, name := range []string{"sampling", "kmeans-iter", "djcluster-preprocess", "rtree-build"} {
		w := rec.Workload(name)
		if w == nil {
			t.Fatalf("workload %s missing", name)
		}
		if w.Counters["dfs.dfs_bytes_read"] <= 0 {
			t.Errorf("%s: dfs.dfs_bytes_read = %d, want > 0 (have %v)",
				name, w.Counters["dfs.dfs_bytes_read"], counterKeys(w.Counters))
		}
		if w.Counters["task.map_input_records"] <= 0 {
			t.Errorf("%s: task.map_input_records = %d, want > 0", name, w.Counters["task.map_input_records"])
		}
	}
	with := rec.Workload("kmeans-iter")
	without := rec.Workload("kmeans-iter-nocombiner")
	const spilled = "shuffle.shuffle_spilled_records"
	if with.Counters[spilled] <= 0 || without.Counters[spilled] <= 0 {
		t.Fatalf("spill counters missing: with=%d without=%d", with.Counters[spilled], without.Counters[spilled])
	}
	// The combiner ablation is the whole point of the paired workloads:
	// without a combiner every map output record crosses the shuffle.
	if without.Counters[spilled] <= with.Counters[spilled] {
		t.Errorf("combiner ablation invisible in spill counter: with=%d without=%d",
			with.Counters[spilled], without.Counters[spilled])
	}
}

// TestSuiteSelfCompare mirrors the acceptance criterion: a suite
// record compared against a record of the same code at the same scale
// passes within the default noise threshold. Comparing the record to
// itself makes that deterministic in a unit test; the CI smoke step
// does the two-real-runs version.
func TestSuiteSelfCompare(t *testing.T) {
	rec := runSuiteOnce(t)
	cmp := Compare(rec, rec, CompareOptions{})
	if regs := cmp.Regressions(); len(regs) != 0 {
		t.Fatalf("self-compare flagged regressions: %+v", regs)
	}
}

func TestRunSuiteOnlyFilter(t *testing.T) {
	rec, err := RunSuite(SuiteOptions{
		Scale: 2048, Seed: 1,
		Only: []string{"shuffle-merge", "mmc-attack"},
		Env:  Environment{GoVersion: "test"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Workloads) != 2 || rec.Workloads[0].Name != "mmc-attack" || rec.Workloads[1].Name != "shuffle-merge" {
		t.Fatalf("Only filter broke registry order: %+v", rec.Workloads)
	}
	if _, err := RunSuite(SuiteOptions{Only: []string{"nope"}, Env: Environment{GoVersion: "test"}}); err == nil {
		t.Fatal("unknown workload name accepted")
	}
}
