// Package perf is the performance-trajectory harness: it executes a
// pinned registry of named, seeded workloads (the paper's sampling,
// k-means, DJ-Cluster preprocessing and R-tree pipelines plus the MMC
// attack and a shuffle micro-benchmark) and captures, per workload,
// machine-readable measurements — wall time, record/byte throughput,
// alloc and GC deltas from runtime.MemStats, the engine's job counters
// (shuffle spill/merge volume, DFS I/O), and a per-phase wall
// attribution reconstructed with the internal/obs/trace critical-path
// analyzer. Records serialize to schema-versioned BENCH_<NNNN>.json
// files at the repo root, so every PR can append one point to the
// trajectory and `benchtab perf -compare` can diff two points with a
// noise threshold instead of eyeballing table wall-clocks.
//
// The paper's argument is exactly this kind of table (sampling §V,
// k-means Table III, DJ-Cluster §VII, R-tree Fig. 6); the harness
// makes the reproduction's own performance story durable and
// diffable rather than anecdotal.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion identifies the record layout. Bump it on any
// incompatible change to Record; Compare refuses to diff records of
// different schema versions.
const SchemaVersion = 1

// Record is one point on the performance trajectory: a full suite run
// at one scale on one machine.
type Record struct {
	// Schema is the record layout version (SchemaVersion at write time).
	Schema int `json:"schema"`
	// ID is the record's file stem ("BENCH_0006"), assigned when the
	// record is written to an auto-numbered path.
	ID string `json:"id,omitempty"`
	// CreatedUnixMs is the suite start time.
	CreatedUnixMs int64 `json:"created_unix_ms"`
	// Scale is the corpus shrink factor the suite ran at (benchtab
	// convention: scale 1 is the paper's full 2.03M-trace corpus).
	Scale int `json:"scale"`
	// Seed is the master seed every workload derives from.
	Seed int64 `json:"seed"`
	// Env describes the machine and toolchain the suite ran on.
	Env Environment `json:"env"`
	// SuiteWallMs is the wall time of the whole suite, setup included.
	SuiteWallMs float64 `json:"suite_wall_ms"`
	// Workloads are the per-workload measurements, registry order.
	Workloads []WorkloadResult `json:"workloads"`
}

// Environment pins the context a record was measured in, so a compare
// across machines can be discounted appropriately.
type Environment struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	// GitCommit is the repo HEAD at measurement time ("" when the
	// working directory is not a git checkout).
	GitCommit string `json:"git_commit,omitempty"`
}

// CaptureEnv snapshots the current process environment. dir is where
// to resolve the git commit from ("." for the working directory).
func CaptureEnv(dir string) Environment {
	env := Environment{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
	out, err := exec.Command("git", "-C", dir, "rev-parse", "--short", "HEAD").Output()
	if err == nil {
		env.GitCommit = strings.TrimSpace(string(out))
	}
	return env
}

// WorkloadResult is one workload's measurement inside a record.
type WorkloadResult struct {
	// Name is the pinned registry name ("kmeans-iter").
	Name string `json:"name"`
	// Desc is the human summary carried for readers of the raw JSON.
	Desc string `json:"desc,omitempty"`
	// WallUs is the measured-section wall time in microseconds (setup
	// — cluster deployment, corpus upload — is excluded).
	WallUs int64 `json:"wall_us"`
	// Records and Bytes are the logical volume the measured section
	// processed; RecordsPerSec is the derived throughput.
	Records       int64   `json:"records"`
	Bytes         int64   `json:"bytes,omitempty"`
	RecordsPerSec float64 `json:"records_per_sec"`
	// AllocBytes/Mallocs/GCRuns/GCPauseNs are runtime.MemStats deltas
	// across the measured section (TotalAlloc, Mallocs, NumGC,
	// PauseTotalNs).
	AllocBytes int64 `json:"alloc_bytes"`
	Mallocs    int64 `json:"mallocs"`
	GCRuns     int64 `json:"gc_runs"`
	GCPauseNs  int64 `json:"gc_pause_ns"`
	// Counters are the engine job counters summed over every job the
	// measured section ran, flattened as "group.name" — including
	// shuffle.shuffle_spilled_records, shuffle.shuffle_runs_merged and
	// the dfs.* I/O attribution.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Phases attributes the measured wall per phase. For MapReduce
	// workloads it is reconstructed from the critical-path analyzer
	// (map/shuffle/reduce/driver); sequential workloads report their
	// stopwatch-tiled stages. Durations sum to WallUs within the
	// analyzer's 5% invariant, so a regression names its phase.
	Phases []Phase `json:"phases,omitempty"`
}

// Phase is one slice of a workload's wall-clock attribution.
type Phase struct {
	// Phase names the slice ("map", "shuffle", "reduce", "driver", or
	// a workload-defined stage like "link").
	Phase string `json:"phase"`
	// DurUs is the attributed wall time in microseconds.
	DurUs int64 `json:"dur_us"`
	// Pct is DurUs as a percentage of the workload wall.
	Pct float64 `json:"pct"`
}

// Workload returns the named workload result, or nil.
func (r *Record) Workload(name string) *WorkloadResult {
	for i := range r.Workloads {
		if r.Workloads[i].Name == name {
			return &r.Workloads[i]
		}
	}
	return nil
}

// WallMs returns the workload wall in milliseconds.
func (w *WorkloadResult) WallMs() float64 { return float64(w.WallUs) / 1e3 }

// TopPhase returns the phase holding the largest share of the wall.
func (w *WorkloadResult) TopPhase() Phase {
	var top Phase
	for _, p := range w.Phases {
		if p.DurUs > top.DurUs {
			top = p
		}
	}
	return top
}

// benchFileRe pins the trajectory file naming: BENCH_0006.json —
// exactly four digits up to 9999, then the padding widens naturally
// (BENCH_10000.json), so the counter keeps working past four digits.
// Five-plus digits with a leading zero violate the %04d convention
// and stay unparsable.
var benchFileRe = regexp.MustCompile(`^BENCH_(\d{4}|[1-9]\d{4,})\.json$`)

// Seq extracts the sequence number from a BENCH_<NNNN>.json base name,
// or -1 when the name is not a trajectory record (including numbers
// too large to represent — such files are skipped, never clobbered).
func Seq(name string) int {
	m := benchFileRe.FindStringSubmatch(filepath.Base(name))
	if m == nil {
		return -1
	}
	n, err := strconv.Atoi(m[1])
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// LatestPath returns the highest-numbered BENCH_*.json in dir ("" when
// the directory holds none).
func LatestPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestSeq := "", -1
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if s := Seq(e.Name()); s > bestSeq {
			bestSeq = s
			best = filepath.Join(dir, e.Name())
		}
	}
	return best, nil
}

// NextPath returns the next free auto-numbered record path in dir
// (BENCH_0001.json when dir holds no records yet). The returned path
// is verified unoccupied — files whose names Seq cannot parse (say a
// hand-renamed BENCH_010000000000000000000.json) no longer poison the
// counter into handing out a path that already exists, and WriteRecord
// never silently overwrites a trajectory point.
func NextPath(dir string) (string, error) {
	latest, err := LatestPath(dir)
	if err != nil {
		return "", err
	}
	next := 1
	if latest != "" {
		next = Seq(latest) + 1
	}
	for {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%04d.json", next))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path, nil
		} else if err != nil {
			return "", fmt.Errorf("perf: probe %s: %v", path, err)
		}
		next++
	}
}

// WriteRecord writes the record as indented JSON. When path matches
// the BENCH_<NNNN>.json convention the record's ID is set to the file
// stem first.
func WriteRecord(path string, r *Record) error {
	if Seq(path) >= 0 {
		base := filepath.Base(path)
		r.ID = strings.TrimSuffix(base, filepath.Ext(base))
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: encode record: %v", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadRecord loads a record, rejecting unknown schema versions.
func ReadRecord(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: %s: %v", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("perf: %s: schema %d, this build reads %d", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}

// counterKeys returns the sorted keys of a counter map, for
// deterministic rendering.
func counterKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
