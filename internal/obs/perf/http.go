package perf

import (
	"net/http"
	"os"
)

// Handler serves the latest BENCH_*.json record from dir at its mount
// point — wired into the status server as /perf so a deployed cluster
// exposes the trajectory point it was built from. Responds 404 when
// the directory holds no records yet.
func Handler(dir string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		latest, err := LatestPath(dir)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if latest == "" {
			http.Error(w, "no BENCH_*.json records", http.StatusNotFound)
			return
		}
		data, err := os.ReadFile(latest)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Perf-Record", latest)
		w.Write(data)
	})
}
