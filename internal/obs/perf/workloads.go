package perf

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/rpc"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/gepeto"
	"repro/internal/gepeto/synth"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/privacy"
	"repro/internal/recordio"
	"repro/internal/trace"
)

// RunContext is what a workload sees: the suite scale and seed, the
// observability bus every engine must be built on (the runner attaches
// the trace collector to it), and the pipeline span ID bracketing the
// measured section — jobs run inside the measured section must set
// Parent to it so their causal trace lands in the workload's tree and
// the critical-path analyzer can attribute the wall per phase.
type RunContext struct {
	// Scale is the corpus shrink factor (benchtab convention).
	Scale int
	// Seed is the master seed; workloads must derive all randomness
	// from it so two runs at the same (scale, seed) are comparable.
	Seed int64
	// Span is the measured-section span ID ("perf:<workload>").
	Span string
	// Bus carries lifecycle events into the runner's trace collector.
	Bus *obs.Bus
}

// Stats is what a workload's measured section reports back.
type Stats struct {
	// Records and Bytes are the logical input volume processed.
	Records int64
	Bytes   int64
	// Results are the MapReduce jobs the measured section ran; the
	// runner folds their counters into the record.
	Results []*mapreduce.Result
	// Phases, when non-nil, is a manual stopwatch attribution tiling
	// the measured wall (sequential workloads). Nil means "derive the
	// attribution from the trace collector's critical-path analysis".
	Phases []Phase
	// Extra carries workload-specific counters — telemetry that does
	// not flow through MapReduce job counters, like the RPC backend's
	// call/retry/duplicate tallies — merged into the record's flat
	// counter map alongside the "group.name" job counters.
	Extra map[string]int64
}

// RunFunc is a workload's measured section.
type RunFunc func() (Stats, error)

// Workload is one pinned suite entry. Setup builds the fixture —
// cluster deployment, corpus generation, DFS upload — outside the
// measured section and returns the section to measure.
type Workload struct {
	// Name is the stable registry name records and compares key on.
	Name string
	// Desc is a one-line human summary.
	Desc string
	// Setup prepares the fixture and returns the measured section.
	Setup func(rc *RunContext) (RunFunc, error)
}

// Workloads returns the pinned suite, registry order. Names are part
// of the record format: renaming one orphans its trajectory history.
func Workloads() []Workload {
	return []Workload{
		{
			Name:  "sampling",
			Desc:  "§V down-sampling job, 1-min window, upper-limit technique",
			Setup: setupSampling,
		},
		{
			Name:  "kmeans-iter",
			Desc:  "one §VI k-means iteration (k=11, squared Euclidean, combiner on)",
			Setup: setupKMeans(true),
		},
		{
			Name:  "kmeans-iter-nocombiner",
			Desc:  "combiner ablation partner of kmeans-iter (every map record crosses the shuffle)",
			Setup: setupKMeans(false),
		},
		{
			Name:  "djcluster-preprocess",
			Desc:  "Fig. 5 preprocessing pipeline: speed filter + dedup over the 1-min-sampled corpus",
			Setup: setupPreprocess,
		},
		{
			Name:  "rtree-build",
			Desc:  "Fig. 6 three-phase MapReduce R-tree construction (z-order curve)",
			Setup: setupRTree,
		},
		{
			Name:  "mmc-attack",
			Desc:  "§VIII MMC de-anonymization: build per-user models, link pseudonymous halves",
			Setup: setupMMCAttack,
		},
		{
			Name:  "shuffle-merge",
			Desc:  "shuffle micro-bench: typed encode, spill sort, k-way merge, decode",
			Setup: setupShuffleMerge,
		},
		{
			Name:  "distributed-kmeans",
			Desc:  "k-means iteration through the RPC backend: jobtracker + 7 workers over the in-memory transport",
			Setup: setupDistributedKMeans,
		},
		{
			Name:  "synth-generate",
			Desc:  "million-user MMC-driven synthetic corpus streamed into DFS (scaled)",
			Setup: setupSynthGenerate,
		},
		{
			Name:  "synth-kmeans-spill",
			Desc:  "k-means iteration over the synthetic corpus under a spill-forcing shuffle budget",
			Setup: setupSynthKMeansSpill,
		},
	}
}

// WorkloadNames lists the registry names, for -list and filters.
func WorkloadNames() []string {
	ws := Workloads()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}

// scaledChunk shrinks a full-scale chunk size by the suite scale,
// keeping chunk counts (and so task counts) at their full-scale
// values — the same convention cmd/benchtab uses.
func scaledChunk(chunkMB int64, scale int) int64 {
	chunk := chunkMB << 20 / int64(scale)
	if chunk < 64<<10 {
		chunk = 64 << 10
	}
	return chunk
}

// newToolkit deploys the paper's standard 7-node testbed on the
// workload's bus so every engine event reaches the trace collector.
func newToolkit(rc *RunContext, chunkMB int64) (*core.Toolkit, error) {
	return core.NewToolkit(core.ClusterConfig{
		Nodes: 7, Racks: 2, SlotsPerNode: 4,
		ChunkSize: scaledChunk(chunkMB, rc.Scale),
		Seed:      rc.Seed,
		Obs:       rc.Bus,
	})
}

// uploadCorpus generates the paper178-shaped corpus at the suite scale
// and uploads it as two concatenated record files.
func uploadCorpus(tk *core.Toolkit, rc *RunContext) (*trace.Dataset, error) {
	ds := geolife.Generate(geolife.Scaled(rc.Seed, rc.Scale))
	if err := geolife.WriteRecordsConcat(tk.FS(), "data", ds, 2); err != nil {
		return nil, err
	}
	return ds, nil
}

// dirBytes sums the stored size of a DFS directory.
func dirBytes(tk *core.Toolkit, dir string) int64 {
	return fsDirBytes(tk.FS(), dir)
}

func fsDirBytes(fs *dfs.FileSystem, dir string) int64 {
	var total int64
	for _, f := range fs.List(dir) {
		if sz, err := fs.Size(f); err == nil {
			total += sz
		}
	}
	return total
}

func setupSampling(rc *RunContext) (RunFunc, error) {
	tk, err := newToolkit(rc, 64)
	if err != nil {
		return nil, err
	}
	ds, err := uploadCorpus(tk, rc)
	if err != nil {
		return nil, err
	}
	in := dirBytes(tk, "data")
	return func() (Stats, error) {
		job := gepeto.SamplingJob("perf-sampling", []string{"data"}, "out", time.Minute, gepeto.SampleUpperLimit)
		job.Parent = rc.Span
		res, err := tk.Engine().Run(job)
		if err != nil {
			return Stats{}, err
		}
		return Stats{
			Records: int64(ds.NumTraces()),
			Bytes:   in,
			Results: []*mapreduce.Result{res},
		}, nil
	}, nil
}

func setupKMeans(useCombiner bool) func(rc *RunContext) (RunFunc, error) {
	return func(rc *RunContext) (RunFunc, error) {
		tk, err := newToolkit(rc, 64)
		if err != nil {
			return nil, err
		}
		ds, err := uploadCorpus(tk, rc)
		if err != nil {
			return nil, err
		}
		in := dirBytes(tk, "data")
		return func() (Stats, error) {
			res, err := gepeto.KMeansMR(tk.Engine(), []string{"data"}, "kmeans-work", gepeto.KMeansOptions{
				K: 11, Distance: geo.MetricSquaredEuclidean, MaxIter: 1,
				Seed: rc.Seed, UseCombiner: useCombiner, Parent: rc.Span,
			})
			if err != nil {
				return Stats{}, err
			}
			return Stats{
				Records: int64(ds.NumTraces()),
				Bytes:   in,
				Results: res.IterationResults,
			}, nil
		}, nil
	}
}

func setupPreprocess(rc *RunContext) (RunFunc, error) {
	tk, err := newToolkit(rc, 64)
	if err != nil {
		return nil, err
	}
	if _, err := uploadCorpus(tk, rc); err != nil {
		return nil, err
	}
	// Sampling is fixture, not the measured pipeline.
	sres, err := tk.Sample("data", "sampled", time.Minute, gepeto.SampleUpperLimit)
	if err != nil {
		return nil, err
	}
	sampled := sres.Counters.Value(mapreduce.CounterGroupTask, mapreduce.CounterMapOutputRecords)
	in := dirBytes(tk, "sampled")
	return func() (Stats, error) {
		speed := gepeto.SpeedFilterJob("perf-speed", []string{"sampled"}, "pre1", 2.0)
		dedup := gepeto.DedupJob("perf-dedup", []string{"pre1"}, "pre2", 1.0)
		speed.Parent, dedup.Parent = rc.Span, rc.Span
		results, err := tk.Engine().RunPipeline(speed, dedup)
		if err != nil {
			return Stats{}, err
		}
		return Stats{Records: sampled, Bytes: in, Results: results}, nil
	}, nil
}

func setupRTree(rc *RunContext) (RunFunc, error) {
	tk, err := newToolkit(rc, 64)
	if err != nil {
		return nil, err
	}
	ds, err := uploadCorpus(tk, rc)
	if err != nil {
		return nil, err
	}
	in := dirBytes(tk, "data")
	return func() (Stats, error) {
		_, results, err := gepeto.BuildRTreeMR(tk.Engine(), []string{"data"}, "rtree-work", gepeto.RTreeBuildOptions{
			Curve: "zorder", Seed: rc.Seed, Parent: rc.Span,
		})
		if err != nil {
			return Stats{}, err
		}
		return Stats{Records: int64(ds.NumTraces()), Bytes: in, Results: results}, nil
	}, nil
}

func setupMMCAttack(rc *RunContext) (RunFunc, error) {
	ds, truth := geolife.GenerateWithTruth(geolife.Scaled(rc.Seed, rc.Scale))
	users := len(ds.Trails)
	if users > 8 {
		users = 8
	}
	var records int64
	for u := 0; u < users; u++ {
		records += int64(len(ds.Trails[u].Traces))
	}
	return func() (Stats, error) {
		start := time.Now()
		var known, anon []*privacy.MMC
		truthMap := map[string]string{}
		for u := 0; u < users; u++ {
			tr := &ds.Trails[u]
			half := len(tr.Traces) / 2
			k, err := privacy.BuildMMC(&trace.Trail{User: tr.User, Traces: tr.Traces[:half]}, truth.POIs(tr.User), 50)
			if err != nil {
				return Stats{}, err
			}
			a, err := privacy.BuildMMC(&trace.Trail{User: "anon-" + tr.User, Traces: tr.Traces[half:]}, truth.POIs(tr.User), 50)
			if err != nil {
				return Stats{}, err
			}
			known = append(known, k)
			anon = append(anon, a)
			truthMap[a.User] = tr.User
		}
		built := time.Now()
		res := privacy.LinkByMMC(known, anon, truthMap)
		if res.Total != users {
			return Stats{}, fmt.Errorf("mmc-attack: linked %d of %d users", res.Total, users)
		}
		linked := time.Now()
		return Stats{
			Records: records,
			Phases: []Phase{
				{Phase: "build-models", DurUs: built.Sub(start).Microseconds()},
				{Phase: "link", DurUs: linked.Sub(built).Microseconds()},
			},
		}, nil
	}, nil
}

func setupShuffleMerge(rc *RunContext) (RunFunc, error) {
	// Map output sized so the full-scale run shuffles ~2M records,
	// shrinking with the suite scale like the corpus does.
	const maps = 16
	recs := 2_000_000 / rc.Scale / maps
	if recs < 500 {
		recs = 500
	}
	// Deterministic unsorted emission, keyed to collide across runs.
	rng := newSplitMix(uint64(rc.Seed))
	var kbuf, vbuf []byte
	raw := make([][]mapreduce.KV, maps)
	var bytes int64
	for m := range raw {
		run := make([]mapreduce.KV, 0, recs)
		for r := 0; r < recs; r++ {
			id := int64(rng.next() % 3000)
			kbuf = (recordio.Int64{}).Append(kbuf[:0], id)
			vbuf = (recordio.PointSumCodec{}).Append(vbuf[:0], recordio.PointSum{
				LatSum: 39 + float64(rng.next()%1000)/1000,
				LonSum: 116 + float64(rng.next()%1000)/1000,
				N:      1,
			})
			kv := mapreduce.KV{Key: string(kbuf), Value: string(vbuf)}
			bytes += int64(len(kv.Key) + len(kv.Value))
			run = append(run, kv)
		}
		raw[m] = run
	}
	return func() (Stats, error) {
		start := time.Now()
		// Spill sort: each map task stable-sorts its run at commit.
		runs := make([][]mapreduce.KV, maps)
		for m := range raw {
			run := append([]mapreduce.KV(nil), raw[m]...)
			sort.SliceStable(run, func(i, j int) bool { return run[i].Key < run[j].Key })
			runs[m] = run
		}
		sorted := time.Now()
		merged := mapreduce.MergeRuns(runs)
		if len(merged) != maps*recs {
			return Stats{}, fmt.Errorf("shuffle-merge: merged %d records, want %d", len(merged), maps*recs)
		}
		mergedAt := time.Now()
		// Decode every merged value, the reduce-side record lifecycle.
		var sum float64
		for _, kv := range merged {
			ps, err := (recordio.PointSumCodec{}).Decode(kv.Value)
			if err != nil {
				return Stats{}, err
			}
			sum += ps.LatSum
		}
		if sum == 0 {
			return Stats{}, fmt.Errorf("shuffle-merge: decode produced no data")
		}
		done := time.Now()
		return Stats{
			Records: int64(maps * recs),
			Bytes:   bytes,
			Phases: []Phase{
				{Phase: "spill-sort", DurUs: sorted.Sub(start).Microseconds()},
				{Phase: "merge", DurUs: mergedAt.Sub(sorted).Microseconds()},
				{Phase: "decode", DurUs: done.Sub(mergedAt).Microseconds()},
			},
		}, nil
	}, nil
}

// setupDistributedKMeans measures the same iteration as kmeans-iter but
// through the out-of-process scheduling path: a jobtracker and seven
// worker loops exchanging registration, heartbeat, assignment,
// completion and DFS traffic over the in-memory transport (full gob
// round-trips, no real sockets). The delta against kmeans-iter is the
// RPC backend's coordination and serialization overhead.
func setupDistributedKMeans(rc *RunContext) (RunFunc, error) {
	c, err := cluster.NewUniform(7, 2, 4)
	if err != nil {
		return nil, err
	}
	fs, err := dfs.New(c, dfs.Config{ChunkSize: scaledChunk(64, rc.Scale), Seed: rc.Seed})
	if err != nil {
		return nil, err
	}
	// The jobtracker starts with every node dead; nodes come alive as
	// their workers register, so the deployment must be up before the
	// corpus upload can place chunks.
	net := rpc.NewMemNetwork()
	jt := rpc.NewJobtracker(rpc.JobtrackerConfig{Cluster: c, FS: fs, Obs: rc.Bus, Transport: net})
	net.Bind("jt", jt.Server())
	workers := make([]*rpc.Worker, 0, len(c.Nodes()))
	var (
		runMu   sync.Mutex
		runErrs []error
	)
	for _, n := range c.Nodes() {
		addr := "worker:" + n.ID
		w := rpc.NewWorker(rpc.WorkerConfig{
			Node: n.ID, Slots: n.Slots, Transport: net,
			JobtrackerAddr: "jt", Addr: addr,
		})
		net.Bind(addr, w.Server())
		workers = append(workers, w)
		go func(id string) {
			// Registration failure surfaces as a WaitForWorkers
			// timeout; keep the cause attached to that error instead
			// of dropping it here.
			if err := w.Run(); err != nil {
				runMu.Lock()
				runErrs = append(runErrs, fmt.Errorf("worker %s: %w", id, err))
				runMu.Unlock()
			}
		}(n.ID)
	}
	if err := jt.WaitForWorkers(len(c.Nodes()), 10*time.Second); err != nil {
		runMu.Lock()
		err = errors.Join(append([]error{err}, runErrs...)...)
		runMu.Unlock()
		return nil, err
	}
	ds := geolife.Generate(geolife.Scaled(rc.Seed, rc.Scale))
	if err := geolife.WriteRecordsConcat(fs, "data", ds, 2); err != nil {
		return nil, err
	}
	in := fsDirBytes(fs, "data")
	engine := mapreduce.NewEngine(c, fs, mapreduce.Options{Executor: jt.Executor(), Obs: rc.Bus})
	return func() (Stats, error) {
		res, err := gepeto.KMeansMR(engine, []string{"data"}, "kmeans-work", gepeto.KMeansOptions{
			K: 11, Distance: geo.MetricSquaredEuclidean, MaxIter: 1,
			Seed: rc.Seed, UseCombiner: true, Parent: rc.Span,
		})
		// Tear the deployment down either way so its heartbeat and
		// monitor goroutines don't tick under later workloads.
		jt.ShutdownWorkers()
		for _, w := range workers {
			w.Stop()
		}
		jt.Stop()
		if err != nil {
			return Stats{}, err
		}
		// The RPC plane's own tallies ride the record as extra counters,
		// so the trajectory tracks coordination overhead (calls, retries,
		// duplicates) next to the wall-clock delta against kmeans-iter.
		extra := map[string]int64{
			"rpc.dup_completions": jt.DupCompletions(),
			"rpc.dfs_dup_creates": jt.DupDFSCreates(),
		}
		for _, p := range jt.Registry().Snapshot() {
			switch p.Name {
			case "rpc_client_calls_total":
				extra["rpc.jt_calls"] += p.Value
				if p.Labels["status"] != "ok" {
					extra["rpc.jt_call_errors"] += p.Value
				}
			case "rpc_server_handled_total":
				extra["rpc.jt_handled"] += p.Value
			}
		}
		for _, w := range workers {
			for _, p := range w.Registry().Snapshot() {
				switch p.Name {
				case "rpc_client_calls_total":
					extra["rpc.worker_calls"] += p.Value
					if p.Labels["status"] != "ok" {
						extra["rpc.worker_call_errors"] += p.Value
					}
				case "rpc_complete_retries_total":
					extra["rpc.complete_retries"] += p.Value
				case "rpc_store_retries_total":
					extra["rpc.store_retries"] += p.Value
				}
			}
		}
		return Stats{
			Records: int64(ds.NumTraces()),
			Bytes:   in,
			Results: res.IterationResults,
			Extra:   extra,
		}, nil
	}, nil
}

// synthUsers scales the tentpole's million users down by the suite
// scale, floored so templates still get exercised at every scale.
func synthUsers(scale int) int {
	users := 1_000_000 / scale
	if users < 512 {
		users = 512
	}
	return users
}

func setupSynthGenerate(rc *RunContext) (RunFunc, error) {
	tk, err := newToolkit(rc, 64)
	if err != nil {
		return nil, err
	}
	opts := synth.Options{
		Users: synthUsers(rc.Scale), TracesPerUser: 8,
		Seed: rc.Seed, TemplateUsers: 8,
	}
	return func() (Stats, error) {
		stats, err := synth.ToDFS(tk.FS(), "synth", opts)
		if err != nil {
			return Stats{}, err
		}
		return Stats{
			Records: stats.Traces,
			Bytes:   stats.Bytes,
			Phases: []Phase{
				{Phase: "fit-templates", DurUs: stats.FitWall.Microseconds()},
				{Phase: "generate", DurUs: stats.GenWall.Microseconds()},
			},
		}, nil
	}, nil
}

func setupSynthKMeansSpill(rc *RunContext) (RunFunc, error) {
	tk, err := newToolkit(rc, 64)
	if err != nil {
		return nil, err
	}
	// The corpus is fixture; the measured section is the bounded-shuffle
	// k-means iteration over it.
	stats, err := synth.ToDFS(tk.FS(), "synth", synth.Options{
		Users: synthUsers(rc.Scale), TracesPerUser: 8,
		Seed: rc.Seed, TemplateUsers: 8,
	})
	if err != nil {
		return nil, err
	}
	return func() (Stats, error) {
		res, err := gepeto.KMeansMR(tk.Engine(), []string{"synth"}, "kmeans-work", gepeto.KMeansOptions{
			K: 11, Distance: geo.MetricSquaredEuclidean, MaxIter: 1,
			Seed: rc.Seed, UseCombiner: true, Parent: rc.Span,
			// Far below per-task intermediate volume, so every map task
			// spills and the reduce side runs the external merge.
			MaxShuffleBytes: 64 << 10,
			CompressSpill:   true,
		})
		if err != nil {
			return Stats{}, err
		}
		var spillFiles int64
		for _, ir := range res.IterationResults {
			spillFiles += ir.Counters.Value(mapreduce.CounterGroupShuffle, mapreduce.CounterShuffleSpillFiles)
		}
		if spillFiles == 0 {
			return Stats{}, fmt.Errorf("synth-kmeans-spill: budget never tripped, workload is not exercising the external shuffle")
		}
		return Stats{
			Records: stats.Traces,
			Bytes:   stats.Bytes,
			Results: res.IterationResults,
		}, nil
	}, nil
}

// splitMix is a tiny deterministic PRNG (SplitMix64), so the shuffle
// workload needs no math/rand state and stays identical across runs.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed + 0x9E3779B97F4A7C15} }

func (s *splitMix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
