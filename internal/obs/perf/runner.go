package perf

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/obs"
	obstrace "repro/internal/obs/trace"
)

// SuiteOptions configure one suite run.
type SuiteOptions struct {
	// Scale is the corpus shrink factor (default DefaultScale).
	Scale int
	// Seed is the master seed (default 1).
	Seed int64
	// Only, when non-empty, restricts the run to the named workloads
	// (registry order is preserved; unknown names are an error).
	Only []string
	// Env overrides the environment block (zero value → CaptureEnv(".")).
	Env Environment
	// Logf receives progress lines ("running kmeans-iter..."); nil is
	// silent.
	Logf func(format string, args ...any)
}

// DefaultScale is the shrink factor records are published at: the
// paper178 corpus divided by 64 (~32k traces), small enough that the
// whole suite runs in seconds yet every job still spans multiple
// chunks, tasks and reduce partitions.
const DefaultScale = 64

func (o SuiteOptions) withDefaults() SuiteOptions {
	if o.Scale <= 0 {
		o.Scale = DefaultScale
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Env == (Environment{}) {
		o.Env = CaptureEnv(".")
	}
	return o
}

// RunSuite executes the pinned workload registry and returns the
// trajectory record. Each workload runs with a fresh trace collector
// on its own bus; its measured section is bracketed by a pipeline span
// so the critical-path analyzer can attribute the wall per phase.
func RunSuite(opts SuiteOptions) (*Record, error) {
	opts = opts.withDefaults()
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	selected, err := selectWorkloads(opts.Only)
	if err != nil {
		return nil, err
	}
	rec := &Record{
		Schema:        SchemaVersion,
		CreatedUnixMs: time.Now().UnixMilli(),
		Scale:         opts.Scale,
		Seed:          opts.Seed,
		Env:           opts.Env,
	}
	suiteStart := time.Now()
	for _, w := range selected {
		logf("running %s...", w.Name)
		wr, err := runWorkload(w, opts)
		if err != nil {
			return nil, fmt.Errorf("perf: workload %s: %v", w.Name, err)
		}
		rec.Workloads = append(rec.Workloads, wr)
	}
	rec.SuiteWallMs = float64(time.Since(suiteStart).Microseconds()) / 1e3
	return rec, nil
}

// selectWorkloads resolves the Only filter against the registry.
func selectWorkloads(only []string) ([]Workload, error) {
	all := Workloads()
	if len(only) == 0 {
		return all, nil
	}
	want := make(map[string]bool, len(only))
	for _, n := range only {
		want[n] = true
	}
	var out []Workload
	for _, w := range all {
		if want[w.Name] {
			out = append(out, w)
			delete(want, w.Name)
		}
	}
	for n := range want {
		return nil, fmt.Errorf("perf: unknown workload %q (have %v)", n, WorkloadNames())
	}
	return out, nil
}

// runWorkload measures one workload: fixture setup outside the clock,
// then MemStats deltas, wall time and the span-bracketed trace around
// the measured section.
func runWorkload(w Workload, opts SuiteOptions) (WorkloadResult, error) {
	collector := obstrace.NewCollector(nil, 4)
	rc := &RunContext{
		Scale: opts.Scale,
		Seed:  opts.Seed,
		Span:  "perf:" + w.Name,
		Bus:   obs.NewBus(collector),
	}
	run, err := w.Setup(rc)
	if err != nil {
		return WorkloadResult{}, fmt.Errorf("setup: %v", err)
	}

	// Settle the heap so the MemStats delta belongs to the measured
	// section, not to fixture garbage collected mid-run.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	rc.Bus.Emit(obs.Event{Type: obs.SpanStart, Span: rc.Span, Detail: w.Desc})
	start := time.Now()
	stats, runErr := run()
	wall := time.Since(start)
	end := obs.Event{Type: obs.SpanEnd, Span: rc.Span}
	if runErr != nil {
		end.Err = runErr.Error()
	}
	rc.Bus.Emit(end)
	if runErr != nil {
		return WorkloadResult{}, runErr
	}
	runtime.ReadMemStats(&after)

	wr := WorkloadResult{
		Name:       w.Name,
		Desc:       w.Desc,
		WallUs:     wall.Microseconds(),
		Records:    stats.Records,
		Bytes:      stats.Bytes,
		AllocBytes: int64(after.TotalAlloc - before.TotalAlloc),
		Mallocs:    int64(after.Mallocs - before.Mallocs),
		GCRuns:     int64(after.NumGC - before.NumGC),
		GCPauseNs:  int64(after.PauseTotalNs - before.PauseTotalNs),
		Counters:   sumCounters(stats.Results),
	}
	if wall > 0 {
		wr.RecordsPerSec = float64(stats.Records) / wall.Seconds()
	}
	if len(stats.Extra) > 0 {
		if wr.Counters == nil {
			wr.Counters = make(map[string]int64, len(stats.Extra))
		}
		for k, v := range stats.Extra {
			wr.Counters[k] += v
		}
	}
	wr.Phases = stats.Phases
	if wr.Phases == nil {
		wr.Phases = attributePhases(collector, rc.Span)
	}
	finishPhases(&wr)
	return wr, nil
}

// sumCounters folds every job's counters into one flat "group.name"
// map — the shuffle spill/merge counters and the per-job DFS I/O
// attribution land here.
func sumCounters(results []*mapreduce.Result) map[string]int64 {
	if len(results) == 0 {
		return nil
	}
	out := make(map[string]int64)
	for _, res := range results {
		if res == nil || res.Counters == nil {
			continue
		}
		for group, names := range res.Counters.Snapshot() {
			for name, v := range names {
				out[group+"."+name] += v
			}
		}
	}
	return out
}

// attributePhases reconstructs the workload's per-phase wall from its
// finished trace tree: the critical-path analyzer attributes each
// job's wall exactly (map/shuffle/reduce/driver tiling the job), and
// the gaps between sequential jobs — centroid updates, phase-3 R-tree
// merging, split computation — are driver time. The returned slices
// sum to the tree wall, which brackets the measured section.
func attributePhases(collector *obstrace.Collector, span string) []Phase {
	tree, ok := collector.Find(span)
	if !ok {
		return nil
	}
	analysis := obstrace.AnalyzeTree(tree, obstrace.Options{})
	totals := make(map[string]int64)
	var order []string
	add := func(phase string, durUs int64) {
		if _, seen := totals[phase]; !seen {
			order = append(order, phase)
		}
		totals[phase] += durUs
	}
	var jobWallUs int64
	for _, job := range analysis.Jobs {
		jobWallUs += job.WallUs
		for _, pc := range job.Phases {
			add(pc.Phase, pc.DurUs)
		}
	}
	// The workloads run their jobs sequentially, so the tree wall not
	// covered by any job is driver time between jobs.
	if gap := tree.WallUs() - jobWallUs; gap > 0 {
		add("driver", gap)
	}
	phases := make([]Phase, 0, len(order))
	for _, name := range order {
		phases = append(phases, Phase{Phase: name, DurUs: totals[name]})
	}
	return phases
}

// finishPhases merges any duplicate "driver" entries to the end and
// computes percentages against the recorded wall.
func finishPhases(wr *WorkloadResult) {
	for i := range wr.Phases {
		if wr.WallUs > 0 {
			wr.Phases[i].Pct = 100 * float64(wr.Phases[i].DurUs) / float64(wr.WallUs)
		}
	}
}
