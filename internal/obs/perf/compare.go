package perf

import (
	"fmt"
	"io"
	"strings"
)

// CompareOptions tune the regression diff.
type CompareOptions struct {
	// Threshold is the relative slowdown tolerated before a workload is
	// flagged as a regression (0.40 → 40% slower). Zero means
	// DefaultThreshold.
	Threshold float64
	// SlackUs is an absolute grace added on top of the relative
	// threshold, absorbing scheduler jitter on sub-millisecond
	// workloads. Zero means DefaultSlackUs.
	SlackUs int64
}

// DefaultThreshold is the relative wall-time slowdown tolerated by
// default. Suite workloads at the published scale run tens to hundreds
// of milliseconds, where run-to-run noise of 10–20% is routine on a
// shared machine; 40% keeps back-to-back runs quiet while still
// catching the step changes a real regression produces.
const DefaultThreshold = 0.40

// DefaultSlackUs is the absolute grace (5ms) added to every per-
// workload bound, so microsecond-scale workloads are not flagged over
// scheduling noise larger than their whole runtime.
const DefaultSlackUs = 5_000

func (o CompareOptions) withDefaults() CompareOptions {
	if o.Threshold <= 0 {
		o.Threshold = DefaultThreshold
	}
	if o.SlackUs <= 0 {
		o.SlackUs = DefaultSlackUs
	}
	return o
}

// Comparison is the result of diffing a new record against an old one.
type Comparison struct {
	Old, New  *Record
	Threshold float64
	SlackUs   int64
	// Rows is one entry per workload present in either record, old
	// record order first, then new-only workloads.
	Rows []CompareRow
}

// CompareRow is one workload's delta.
type CompareRow struct {
	Name string
	// Old/New are nil when the workload exists on only one side.
	Old, New *WorkloadResult
	// WallDelta is (new-old)/old wall time; only meaningful when both
	// sides exist and ran at the same scale.
	WallDelta float64
	// ThroughputDelta is (new-old)/old records/sec, the scale-robust
	// basis used when the two records ran at different scales.
	ThroughputDelta float64
	// SameScale records whether the wall comparison is apples-to-apples.
	SameScale bool
	// Regressed marks the row as exceeding the noise threshold.
	Regressed bool
	// Note explains non-comparable rows ("added", "removed",
	// "scale differs: throughput basis").
	Note string
}

// Regressions returns the rows flagged as regressed.
func (c *Comparison) Regressions() []CompareRow {
	var out []CompareRow
	for _, r := range c.Rows {
		if r.Regressed {
			out = append(out, r)
		}
	}
	return out
}

// Compare diffs new against old workload by workload. When both
// records ran at the same scale and seed the wall time is compared
// directly (new must stay under old·(1+threshold)+slack); when the
// scales differ, records/sec throughput is compared instead, since
// wall times at different corpus sizes are incommensurable.
func Compare(old, new *Record, opts CompareOptions) *Comparison {
	opts = opts.withDefaults()
	cmp := &Comparison{Old: old, New: new, Threshold: opts.Threshold, SlackUs: opts.SlackUs}
	sameScale := old.Scale == new.Scale && old.Seed == new.Seed
	seen := make(map[string]bool)
	for i := range old.Workloads {
		ow := &old.Workloads[i]
		seen[ow.Name] = true
		row := CompareRow{Name: ow.Name, Old: ow, New: new.Workload(ow.Name), SameScale: sameScale}
		if row.New == nil {
			row.Note = "removed"
			cmp.Rows = append(cmp.Rows, row)
			continue
		}
		if ow.WallUs > 0 {
			row.WallDelta = float64(row.New.WallUs-ow.WallUs) / float64(ow.WallUs)
		}
		if ow.RecordsPerSec > 0 {
			row.ThroughputDelta = (row.New.RecordsPerSec - ow.RecordsPerSec) / ow.RecordsPerSec
		}
		if sameScale {
			bound := int64(float64(ow.WallUs)*(1+opts.Threshold)) + opts.SlackUs
			row.Regressed = row.New.WallUs > bound
		} else if ow.RecordsPerSec <= 0 {
			// A baseline without recorded throughput cannot anchor a
			// cross-scale comparison; say so instead of letting the zero
			// delta read as "ok".
			row.Note = "scale differs: no baseline throughput, not comparable"
		} else {
			row.Note = "scale differs: throughput basis"
			// Slack translated to a throughput ratio: a workload whose
			// old wall was within the slack is never flagged.
			row.Regressed = row.ThroughputDelta < -opts.Threshold && ow.WallUs > opts.SlackUs
		}
		cmp.Rows = append(cmp.Rows, row)
	}
	for i := range new.Workloads {
		nw := &new.Workloads[i]
		if !seen[nw.Name] {
			cmp.Rows = append(cmp.Rows, CompareRow{Name: nw.Name, New: nw, Note: "added", SameScale: sameScale})
		}
	}
	return cmp
}

// WriteMarkdown renders the comparison as a markdown summary table with
// per-workload wall, throughput and top-phase columns, flagging
// regressions.
func (c *Comparison) WriteMarkdown(w io.Writer) error {
	oldID, newID := recordLabel(c.Old), recordLabel(c.New)
	if _, err := fmt.Fprintf(w, "### Perf compare: %s → %s (threshold %.0f%%)\n\n",
		oldID, newID, c.Threshold*100); err != nil {
		return err
	}
	if c.Old.Scale != c.New.Scale || c.Old.Seed != c.New.Seed {
		fmt.Fprintf(w, "_Scales differ (old 1/%d seed %d, new 1/%d seed %d): comparing records/sec throughput, not wall time._\n\n",
			c.Old.Scale, c.Old.Seed, c.New.Scale, c.New.Seed)
	}
	fmt.Fprintln(w, "| workload | old wall | new wall | Δ wall | old rec/s | new rec/s | Δ rec/s | top phase | status |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|---|---|")
	for _, r := range c.Rows {
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s | %s | %s | %s |\n",
			r.Name,
			wallCell(r.Old), wallCell(r.New), deltaCell(r.Old != nil && r.New != nil && r.Old.WallUs > 0, r.WallDelta),
			rateCell(r.Old), rateCell(r.New), deltaCell(r.Old != nil && r.New != nil && r.Old.RecordsPerSec > 0, r.ThroughputDelta),
			topPhaseCell(r.New), statusCell(r))
	}
	fmt.Fprintln(w)
	if regs := c.Regressions(); len(regs) > 0 {
		names := make([]string, len(regs))
		for i, r := range regs {
			names[i] = r.Name
		}
		fmt.Fprintf(w, "**REGRESSION** in %d workload(s): %s\n", len(regs), strings.Join(names, ", "))
	} else {
		fmt.Fprintln(w, "No regressions beyond the noise threshold.")
	}
	return nil
}

func recordLabel(r *Record) string {
	if r.ID != "" {
		return r.ID
	}
	if r.Env.GitCommit != "" {
		return r.Env.GitCommit
	}
	return "(unsaved)"
}

func wallCell(w *WorkloadResult) string {
	if w == nil {
		return "—"
	}
	return fmt.Sprintf("%.1fms", w.WallMs())
}

func rateCell(w *WorkloadResult) string {
	if w == nil {
		return "—"
	}
	return fmt.Sprintf("%.0f", w.RecordsPerSec)
}

func deltaCell(ok bool, delta float64) string {
	if !ok {
		return "—"
	}
	return fmt.Sprintf("%+.1f%%", delta*100)
}

func topPhaseCell(w *WorkloadResult) string {
	if w == nil {
		return "—"
	}
	top := w.TopPhase()
	if top.Phase == "" {
		return "—"
	}
	return fmt.Sprintf("%s %.0f%%", top.Phase, top.Pct)
}

func statusCell(r CompareRow) string {
	switch {
	case r.Regressed:
		return "**REGRESSED**"
	case r.Note != "":
		return r.Note
	default:
		return "ok"
	}
}
