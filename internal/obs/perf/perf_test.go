package perf

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleRecord(scale int) *Record {
	return &Record{
		Schema: SchemaVersion,
		Scale:  scale,
		Seed:   1,
		Env:    Environment{GoVersion: "go1.22", GOMAXPROCS: 4, NumCPU: 4, GOOS: "linux", GOARCH: "amd64"},
		Workloads: []WorkloadResult{
			{
				Name: "sampling", WallUs: 100_000, Records: 1000, RecordsPerSec: 10_000,
				Counters: map[string]int64{"shuffle.shuffle_bytes": 42},
				Phases:   []Phase{{Phase: "map", DurUs: 60_000, Pct: 60}, {Phase: "reduce", DurUs: 40_000, Pct: 40}},
			},
			{Name: "kmeans-iter", WallUs: 200_000, Records: 1000, RecordsPerSec: 5_000},
		},
	}
}

func TestSeq(t *testing.T) {
	cases := map[string]int{
		"BENCH_0006.json":          6,
		"/repo/BENCH_0123.json":    123,
		"BENCH_6.json":             -1,
		"BENCH_0006.json.bak":      -1,
		"NOTBENCH_0006.json":       -1,
		"bench_0006.json":          -1,
		"BENCH_0000.json":          0,
		"subdir/BENCH_9999.json":   9999,
		"BENCH_00067.json":         -1,
		"BENCH_0006.json/anything": -1,
	}
	for name, want := range cases {
		if got := Seq(name); got != want {
			t.Errorf("Seq(%q) = %d, want %d", name, got, want)
		}
	}
}

func TestPathsAndRoundTrip(t *testing.T) {
	dir := t.TempDir()

	latest, err := LatestPath(dir)
	if err != nil || latest != "" {
		t.Fatalf("LatestPath(empty) = %q, %v; want \"\", nil", latest, err)
	}
	next, err := NextPath(dir)
	if err != nil || filepath.Base(next) != "BENCH_0001.json" {
		t.Fatalf("NextPath(empty) = %q, %v; want BENCH_0001.json", next, err)
	}

	rec := sampleRecord(64)
	p6 := filepath.Join(dir, "BENCH_0006.json")
	if err := WriteRecord(p6, rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != "BENCH_0006" {
		t.Fatalf("WriteRecord assigned ID %q, want BENCH_0006", rec.ID)
	}
	// Decoys must not confuse the numbering.
	os.WriteFile(filepath.Join(dir, "BENCH_0010.json.bak"), []byte("{}"), 0o644)
	os.WriteFile(filepath.Join(dir, "readme.md"), []byte("x"), 0o644)

	latest, err = LatestPath(dir)
	if err != nil || latest != p6 {
		t.Fatalf("LatestPath = %q, %v; want %q", latest, err, p6)
	}
	next, err = NextPath(dir)
	if err != nil || filepath.Base(next) != "BENCH_0007.json" {
		t.Fatalf("NextPath = %q, %v; want BENCH_0007.json", next, err)
	}

	got, err := ReadRecord(p6)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "BENCH_0006" || got.Scale != 64 || len(got.Workloads) != 2 {
		t.Fatalf("round trip mangled record: %+v", got)
	}
	w := got.Workload("sampling")
	if w == nil || w.Counters["shuffle.shuffle_bytes"] != 42 || len(w.Phases) != 2 {
		t.Fatalf("round trip lost workload detail: %+v", w)
	}
	if got.Workload("nope") != nil {
		t.Fatal("Workload(nope) should be nil")
	}
}

func TestSeqPast9999(t *testing.T) {
	cases := map[string]int{
		"BENCH_10000.json":  10000,
		"BENCH_123456.json": 123456,
		"BENCH_010000.json": -1, // leading zero past 4 digits: not %04d widening
	}
	for name, want := range cases {
		if got := Seq(name); got != want {
			t.Errorf("Seq(%q) = %d, want %d", name, got, want)
		}
	}
	// A number too large for int must be skipped, not wrapped or clobbered.
	if got := Seq("BENCH_99999999999999999999999999.json"); got != -1 {
		t.Errorf("overflowing sequence parsed as %d, want -1", got)
	}
}

func TestNextPathNeverReturnsOccupied(t *testing.T) {
	dir := t.TempDir()
	// Counter past 9999: the padding widens instead of wrapping to a
	// name LatestPath would mis-rank.
	os.WriteFile(filepath.Join(dir, "BENCH_10041.json"), []byte("{}"), 0o644)
	next, err := NextPath(dir)
	if err != nil || filepath.Base(next) != "BENCH_10042.json" {
		t.Fatalf("NextPath = %q, %v; want BENCH_10042.json", next, err)
	}

	// An unparsable record plus an occupied candidate: NextPath must
	// probe forward, never returning a path that already exists.
	os.WriteFile(filepath.Join(dir, "BENCH_010000000000000000000.json"), []byte("{}"), 0o644)
	os.WriteFile(filepath.Join(dir, "BENCH_10042.json"), []byte("{}"), 0o644)
	next, err = NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(next) != "BENCH_10043.json" {
		t.Fatalf("NextPath = %q, want BENCH_10043.json", next)
	}
	if _, err := os.Stat(next); !os.IsNotExist(err) {
		t.Fatalf("NextPath returned an occupied path %q", next)
	}
}

func TestReadRecordRejectsSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "BENCH_0001.json")
	rec := sampleRecord(64)
	rec.Schema = SchemaVersion + 1
	if err := WriteRecord(p, rec); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRecord(p); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("ReadRecord accepted schema mismatch: %v", err)
	}
}

func TestTopPhase(t *testing.T) {
	w := &WorkloadResult{Phases: []Phase{
		{Phase: "map", DurUs: 10},
		{Phase: "shuffle", DurUs: 30, Pct: 50},
		{Phase: "reduce", DurUs: 20},
	}}
	if top := w.TopPhase(); top.Phase != "shuffle" {
		t.Fatalf("TopPhase = %+v, want shuffle", top)
	}
	if top := (&WorkloadResult{}).TopPhase(); top.Phase != "" {
		t.Fatalf("TopPhase on empty = %+v", top)
	}
}

func TestHandler(t *testing.T) {
	dir := t.TempDir()
	h := Handler(dir)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/perf", nil))
	if rr.Code != 404 {
		t.Fatalf("empty dir: status %d, want 404", rr.Code)
	}

	if err := WriteRecord(filepath.Join(dir, "BENCH_0001.json"), sampleRecord(64)); err != nil {
		t.Fatal(err)
	}
	newer := sampleRecord(32)
	if err := WriteRecord(filepath.Join(dir, "BENCH_0002.json"), newer); err != nil {
		t.Fatal(err)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/perf", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d, want 200", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q", ct)
	}
	body := rr.Body.String()
	if !strings.Contains(body, `"id": "BENCH_0002"`) || !strings.Contains(body, `"scale": 32`) {
		t.Fatalf("handler did not serve the latest record:\n%s", body)
	}
}
