package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"
)

// StatusServer is the live jobtracker status endpoint, modelled on the
// Hadoop jobtracker web UI the paper's Grid'5000 deployments exposed:
//
//	/jobs         all jobs and pipeline spans (JSON)
//	/jobs/<name>  one job with its full attempt list (JSON)
//	/metrics      Prometheus text-format metrics
//	/metrics.json the same registry as a JSON snapshot
//	/history      persisted job records (when a History is attached)
//	/debug/pprof  the standard Go profiling endpoints
type StatusServer struct {
	ln      net.Listener
	tracker *Tracker
	reg     *Registry
	hist    *History
	// Extra, if set, is invoked at each /metrics scrape to append
	// additional exposition lines (e.g. DFS storage gauges).
	Extra func() string
	// ExtraJSON, if set, supplies additional metric points for
	// /metrics.json, appended after the registry snapshot. A clustered
	// jobtracker uses it to expose the federated per-worker metrics in
	// the same snapshot as its own.
	ExtraJSON func() []MetricPoint
	srv       *http.Server
	mux       *http.ServeMux

	mu    sync.Mutex
	extra []string // extra endpoint patterns, for the index page
}

// NewStatusServer starts serving on addr (":0" picks a free port).
// tracker, reg and hist may each be nil, disabling their endpoints.
func NewStatusServer(addr string, tracker *Tracker, reg *Registry, hist *History) (*StatusServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: status server: %v", err)
	}
	s := &StatusServer{ln: ln, tracker: tracker, reg: reg, hist: hist}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/history", s.handleHistory)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Handle registers an extra handler on the server's mux (e.g. the
// /trace/ and /analyze/ endpoints wired up by cmd/gepeto, which live in
// obs/trace and so cannot be registered here without an import cycle).
// The pattern is also advertised on the index page.
func (s *StatusServer) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
	s.mu.Lock()
	s.extra = append(s.extra, pattern)
	s.mu.Unlock()
}

// Addr returns the bound address, e.g. "127.0.0.1:43231".
func (s *StatusServer) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *StatusServer) URL() string {
	host := s.Addr()
	// A wildcard listen address is not dialable; point at loopback.
	if strings.HasPrefix(host, "[::]") || strings.HasPrefix(host, "0.0.0.0") {
		_, port, _ := net.SplitHostPort(host)
		host = "127.0.0.1:" + port
	}
	return "http://" + host
}

// Close shuts the server down immediately, dropping in-flight
// requests. Prefer Shutdown for a graceful stop.
func (s *StatusServer) Close() error { return s.srv.Close() }

// Shutdown stops accepting new connections and waits for in-flight
// requests to finish, up to the context deadline. Safe to call more
// than once.
func (s *StatusServer) Shutdown(ctx context.Context) error {
	return s.srv.Shutdown(ctx)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *StatusServer) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "gepeto jobtracker status — %s\n\n", time.Now().Format(time.RFC3339))
	s.mu.Lock()
	extra := strings.Join(s.extra, " ")
	s.mu.Unlock()
	if extra != "" {
		extra = " " + extra
	}
	fmt.Fprintln(w, "endpoints: /jobs /jobs/<name> /metrics /metrics.json /history /debug/pprof/"+extra)
	if s.tracker != nil {
		for _, js := range s.tracker.Jobs() {
			fmt.Fprintf(w, "%-8s %-10s %s\n", js.Kind, js.State, js.Name)
		}
	}
}

func (s *StatusServer) handleJobs(w http.ResponseWriter, _ *http.Request) {
	if s.tracker == nil {
		http.Error(w, "no tracker attached", http.StatusNotFound)
		return
	}
	writeJSON(w, map[string]any{"jobs": s.tracker.Jobs()})
}

func (s *StatusServer) handleJob(w http.ResponseWriter, r *http.Request) {
	if s.tracker == nil {
		http.Error(w, "no tracker attached", http.StatusNotFound)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/jobs/")
	js, attempts, ok := s.tracker.Job(name)
	if !ok {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, map[string]any{"job": js, "attempts": attempts})
}

func (s *StatusServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.reg != nil {
		s.reg.WritePrometheus(w)
	}
	if s.Extra != nil {
		fmt.Fprint(w, s.Extra())
	}
}

func (s *StatusServer) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	if s.reg == nil && s.ExtraJSON == nil {
		http.Error(w, "no registry attached", http.StatusNotFound)
		return
	}
	var points []MetricPoint
	if s.reg != nil {
		points = s.reg.Snapshot()
	}
	if s.ExtraJSON != nil {
		points = append(points, s.ExtraJSON()...)
	}
	writeJSON(w, map[string]any{"metrics": points})
}

func (s *StatusServer) handleHistory(w http.ResponseWriter, _ *http.Request) {
	if s.hist == nil {
		http.Error(w, "no history attached", http.StatusNotFound)
		return
	}
	recs, err := s.hist.List()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]any{"history": recs})
}
