package trace

import (
	"encoding/json"
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
)

// TraceDir is the directory trace trees are stored under, beside the
// job history's "_history".
const TraceDir = "_trace"

// Store persists assembled trace trees in an obs.FS (the simulated
// DFS, a local mirror directory, or a tee of both), mirroring the
// History store's layout and sequence numbering. Safe for concurrent
// use.
type Store struct {
	mu        sync.Mutex
	fs        obs.FS
	seq       int // next sequence number; 0 = not yet initialised
	maxTraces int // 0 = unbounded

	pruneErrs    int   // prune deletions that failed
	lastPruneErr error // most recent prune failure
}

// NewStore creates a trace store over the given backend.
func NewStore(fs obs.FS) *Store { return &Store{fs: fs} }

// SetMaxTraces bounds the store to the n most recent trees; each Save
// beyond the bound deletes the oldest. n <= 0 means unbounded.
func (s *Store) SetMaxTraces(n int) {
	s.mu.Lock()
	s.maxTraces = n
	s.mu.Unlock()
}

// tracePath builds "_trace/000042-rootname.json".
func tracePath(seq int, root string) string {
	return fmt.Sprintf("%s/%06d-%s.json", TraceDir, seq, strings.ReplaceAll(root, "/", "_"))
}

func (s *Store) nextSeqLocked() int {
	if s.seq == 0 {
		max := 0
		for _, p := range s.fs.List(TraceDir) {
			base := path.Base(p)
			if i := strings.IndexByte(base, '-'); i > 0 {
				if n, err := strconv.Atoi(base[:i]); err == nil && n > max {
					max = n
				}
			}
		}
		s.seq = max + 1
	}
	n := s.seq
	s.seq++
	return n
}

// Save assigns the tree a sequence number and persists it, returning
// the path written.
func (s *Store) Save(t *Tree) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t.Seq = s.nextSeqLocked()
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return "", err
	}
	p := tracePath(t.Seq, t.Root.Name)
	if err := s.fs.Create(p, data, ""); err != nil {
		return "", fmt.Errorf("trace: saving tree: %v", err)
	}
	if s.maxTraces > 0 {
		paths := s.fs.List(TraceDir)
		for len(paths) > s.maxTraces {
			// A failed prune must not fail the save that triggered it
			// (the next prune retries), but it is recorded for
			// PruneErrors rather than dropped.
			if err := s.fs.Delete(paths[0]); err != nil {
				s.pruneErrs++
				s.lastPruneErr = err
			}
			paths = paths[1:]
		}
	}
	return p, nil
}

// PruneErrors reports how many prune deletions have failed so far and
// the most recent failure, so a store that no longer honours its
// maxTraces bound is observable.
func (s *Store) PruneErrors() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pruneErrs, s.lastPruneErr
}

// List returns every stored tree ordered by sequence number,
// skipping unparseable files.
func (s *Store) List() ([]*Tree, error) {
	var out []*Tree
	for _, p := range s.fs.List(TraceDir) {
		data, err := s.fs.ReadAll(p)
		if err != nil {
			continue
		}
		var t Tree
		if err := json.Unmarshal(data, &t); err != nil || t.Root == nil {
			continue
		}
		out = append(out, &t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// Find returns the most recent stored tree whose root name matches
// key, that contains a job named key, or whose sequence number equals
// the numeric form of key.
func (s *Store) Find(key string) (*Tree, bool) {
	trees, err := s.List()
	if err != nil {
		return nil, false
	}
	return findIn(trees, key)
}

// findIn scans trees newest-first for a root-name, contained-job-name
// or sequence-number match.
func findIn(trees []*Tree, key string) (*Tree, bool) {
	wantSeq, seqErr := strconv.Atoi(key)
	for i := len(trees) - 1; i >= 0; i-- {
		t := trees[i]
		if t.Root.Name == key || (seqErr == nil && t.Seq == wantSeq) {
			return t, true
		}
		if t.Root.Job(key) != nil {
			return t, true
		}
	}
	return nil, false
}
