package trace

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
)

// benchEvents synthesizes a pipeline of jobs jobs × tasks map attempts
// (plus shuffle Parts and reducers), the shape Assemble and the
// analysis passes see from a real k-means run.
func benchEvents(jobs, tasks int) []obs.Event {
	var evs []obs.Event
	mk := func(t obs.EventType, us int64, f obs.Event) {
		f.Type = t
		f.Time = at(us)
		evs = append(evs, f)
	}
	mk(obs.SpanStart, 0, obs.Event{Span: "bench"})
	clock := int64(1000)
	for j := 0; j < jobs; j++ {
		job := fmt.Sprintf("bench-%03d", j)
		mk(obs.JobSubmitted, clock, obs.Event{Job: job, Parent: "bench"})
		mk(obs.PhaseStart, clock+10, obs.Event{Job: job, Phase: "map"})
		for i := 0; i < tasks; i++ {
			task := fmt.Sprintf("map-%04d", i)
			start := clock + 20 + int64(i)*7
			mk(obs.AttemptStarted, start, obs.Event{Job: job, Phase: "map", Task: task, Node: fmt.Sprintf("n%d", i%8)})
			mk(obs.AttemptSucceeded, start+200+int64(i%13)*11, obs.Event{Job: job, Phase: "map", Task: task, Node: fmt.Sprintf("n%d", i%8)})
		}
		mapEnd := clock + 20 + int64(tasks)*7 + 400
		mk(obs.PhaseEnd, mapEnd, obs.Event{Job: job, Phase: "map"})
		parts := make([]obs.PartStat, 4)
		for p := range parts {
			parts[p] = obs.PartStat{Part: p, Runs: int64(tasks), Records: 100, Bytes: 3200, DurUs: 50}
		}
		mk(obs.PhaseStart, mapEnd+5, obs.Event{Job: job, Phase: "shuffle"})
		mk(obs.PhaseEnd, mapEnd+100, obs.Event{Job: job, Phase: "shuffle", Value: 12800, Parts: parts})
		mk(obs.PhaseStart, mapEnd+110, obs.Event{Job: job, Phase: "reduce"})
		for r := 0; r < 4; r++ {
			task := fmt.Sprintf("reduce-%04d", r)
			mk(obs.AttemptStarted, mapEnd+120, obs.Event{Job: job, Phase: "reduce", Task: task, Node: fmt.Sprintf("n%d", r)})
			mk(obs.AttemptSucceeded, mapEnd+300+int64(r)*17, obs.Event{Job: job, Phase: "reduce", Task: task, Node: fmt.Sprintf("n%d", r)})
		}
		mk(obs.PhaseEnd, mapEnd+400, obs.Event{Job: job, Phase: "reduce"})
		mk(obs.JobFinished, mapEnd+420, obs.Event{Job: job, Parent: "bench", Dur: time.Duration(mapEnd+420-clock) * time.Microsecond})
		clock = mapEnd + 500
	}
	mk(obs.SpanEnd, clock, obs.Event{Span: "bench"})
	return evs
}

func BenchmarkTraceAssemble(b *testing.B) {
	evs := benchEvents(10, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trees := Assemble(evs)
		if len(trees) != 1 {
			b.Fatalf("trees: %d", len(trees))
		}
	}
}

func BenchmarkCriticalPath(b *testing.B) {
	trees := Assemble(benchEvents(10, 100))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := AnalyzeTree(trees[0], Options{})
		if len(a.Jobs) != 10 {
			b.Fatalf("jobs: %d", len(a.Jobs))
		}
	}
}
