package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// rpcFixtureEvents is one remote job: a single map attempt whose worker
// reports a clock-corrected exec window (WorkerTaskDone) and whose
// driver observes the assign→complete round trip (RPCRoundTrip).
func rpcFixtureEvents() []obs.Event {
	mk := func(t obs.EventType, us int64, f obs.Event) obs.Event {
		f.Type = t
		f.Time = at(us)
		return f
	}
	return []obs.Event{
		mk(obs.JobSubmitted, 0, obs.Event{Job: "job-r"}),
		mk(obs.PhaseStart, 100, obs.Event{Job: "job-r", Phase: "map"}),
		mk(obs.AttemptStarted, 200, obs.Event{Job: "job-r", Phase: "map", Task: "map-0000", Node: "n1"}),
		// Worker-side execution [300, 900]us, inside the attempt.
		mk(obs.WorkerTaskDone, 900, obs.Event{Job: "job-r", Phase: "map", Task: "map-0000", Node: "n1",
			Dur: 600 * time.Microsecond}),
		// Driver-side round trip [250, 1000]us: assign latency before the
		// exec window, completion latency after it.
		mk(obs.RPCRoundTrip, 1000, obs.Event{Job: "job-r", Phase: "map", Task: "map-0000", Node: "n1",
			Dur: 750 * time.Microsecond}),
		mk(obs.AttemptSucceeded, 1050, obs.Event{Job: "job-r", Phase: "map", Task: "map-0000", Node: "n1"}),
		mk(obs.PhaseEnd, 1100, obs.Event{Job: "job-r", Phase: "map"}),
		mk(obs.JobFinished, 1200, obs.Event{Job: "job-r"}),
	}
}

func TestAssembleAttachesRPCAndExecSpans(t *testing.T) {
	trees := Assemble(rpcFixtureEvents())
	if len(trees) != 1 {
		t.Fatalf("trees: %d, want 1", len(trees))
	}
	job := trees[0].Root
	if job.Kind != KindJob {
		job = trees[0].Root.Job("job-r")
	}
	if job == nil {
		t.Fatal("job-r not found")
	}
	attempt := job.Children[0].Children[0]
	if attempt.Kind != KindAttempt || attempt.Name != "map-0000" {
		t.Fatalf("attempt = %s %q", attempt.Kind, attempt.Name)
	}
	var exec, rpcSpan *Span
	for _, ch := range attempt.Children {
		switch ch.Kind {
		case KindExec:
			exec = ch
		case KindRPC:
			rpcSpan = ch
		}
	}
	if exec == nil || rpcSpan == nil {
		t.Fatalf("attempt children = %+v, want one exec and one rpc span", attempt.Children)
	}
	if exec.StartUs != 300 || exec.EndUs != 900 || exec.Node != "n1" || exec.Status != StatusSucceeded {
		t.Errorf("exec span [%d,%d] %s on %s, want [300,900] succeeded on n1",
			exec.StartUs, exec.EndUs, exec.Status, exec.Node)
	}
	if rpcSpan.StartUs != 250 || rpcSpan.EndUs != 1000 {
		t.Errorf("rpc span [%d,%d], want [250,1000]", rpcSpan.StartUs, rpcSpan.EndUs)
	}
}

func TestAssembleDropsSubAttemptEventsWithoutJob(t *testing.T) {
	evs := rpcFixtureEvents()
	evs = append(evs[:3:3], append([]obs.Event{
		{Type: obs.WorkerTaskDone, Time: at(500), Task: "map-9999", Node: "n9", Dur: 100 * time.Microsecond},
	}, evs[3:]...)...)
	trees := Assemble(evs)
	if len(trees) != 1 {
		t.Fatalf("trees: %d, want 1", len(trees))
	}
	trees[0].Root.Walk(func(s *Span) {
		if s.Name == "map-9999" {
			t.Error("jobless worker event grew a span")
		}
	})
}

func TestChromeExportPlacesExecOnWorkerLanes(t *testing.T) {
	trees := Assemble(rpcFixtureEvents())
	ct := BuildChrome(trees[0])
	var execTid, rpcTid, attemptTid int
	laneName := map[int]string{}
	for _, e := range ct.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "thread_name":
			laneName[e.Tid] = e.Args["name"].(string)
		case strings.HasPrefix(e.Name, "exec "):
			execTid = e.Tid
		case strings.HasPrefix(e.Name, "rpc "):
			rpcTid = e.Tid
		case e.Name == "map-0000/0":
			attemptTid = e.Tid
		}
	}
	if execTid < execTidBase {
		t.Errorf("exec event on tid %d, want >= %d", execTid, execTidBase)
	}
	if got := laneName[execTid]; got != "n1 (worker)" {
		t.Errorf("exec lane name = %q, want %q", got, "n1 (worker)")
	}
	if rpcTid != attemptTid {
		t.Errorf("rpc event on tid %d, attempt on %d — must share the lane", rpcTid, attemptTid)
	}
	data, err := EncodeChrome(trees[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeChrome(data); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

// TestChromeExportClampsMiscorrectedSpans feeds an exec window whose
// corrected timestamp lands before the tree origin (over-corrected
// clock) and checks the export still satisfies DecodeChrome's
// non-negative-timestamp rule.
func TestChromeExportClampsMiscorrectedSpans(t *testing.T) {
	evs := rpcFixtureEvents()
	evs = append(evs[:4:4], append([]obs.Event{
		{Type: obs.WorkerTaskDone, Time: at(50), Job: "job-r", Phase: "map", Task: "map-0000", Node: "n1",
			Dur: 400 * time.Microsecond}, // window [-350, 50]us
	}, evs[4:]...)...)
	trees := Assemble(evs)
	data, err := EncodeChrome(trees[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeChrome(data); err != nil {
		t.Fatalf("miscorrected span broke the export: %v", err)
	}
}

func TestAnalyzeReportsRPCOverhead(t *testing.T) {
	trees := Assemble(rpcFixtureEvents())
	a := AnalyzeTree(trees[0], Options{})
	if len(a.Jobs) != 1 {
		t.Fatalf("jobs: %d", len(a.Jobs))
	}
	r := a.Jobs[0].RPC
	if r == nil {
		t.Fatal("no RPC report")
	}
	if r.RemoteAttempts != 1 || r.RPCUs != 750 || r.ExecUs != 600 {
		t.Errorf("report = %+v, want 1 attempt, rpc 750us, exec 600us", r)
	}
	// The attempt spans [200, 1050] = 850us; 600us of it executed on
	// the worker, so 250us is assign/report coordination.
	if r.CoordUs != 250 {
		t.Errorf("coordination = %dus, want 250", r.CoordUs)
	}
	if r.PathCoordUs != 250 {
		t.Errorf("critical-path coordination = %dus, want 250 (the only attempt is on the path)", r.PathCoordUs)
	}

	// A purely local tree (no rpc/exec children) must omit the report.
	local := Assemble(fixtureEvents())
	la := AnalyzeTree(local[0], Options{})
	for _, ja := range la.Jobs {
		if ja.RPC != nil {
			t.Errorf("local job %s grew an RPC report: %+v", ja.Job, ja.RPC)
		}
	}

	var buf strings.Builder
	WriteReport(&buf, trees[0], a)
	if !strings.Contains(buf.String(), "rpc overhead:") {
		t.Errorf("report missing rpc overhead section:\n%s", buf.String())
	}
}
