package trace

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// Options tune the analysis passes.
type Options struct {
	// StragglerFactor flags attempts slower than this multiple of the
	// phase median attempt duration. Default 1.5.
	StragglerFactor float64
	// SkewFactor flags reduce partitions holding more than this
	// multiple of the mean partition byte/record volume. Default 2.0.
	SkewFactor float64
}

func (o Options) withDefaults() Options {
	if o.StragglerFactor <= 0 {
		o.StragglerFactor = 1.5
	}
	if o.SkewFactor <= 0 {
		o.SkewFactor = 2.0
	}
	return o
}

// PathStep is one contiguous segment of a job's critical path. Steps
// tile the interval [job start, job end] with no gaps or overlaps, so
// their durations sum exactly to the job wall-clock; Phase attributes
// each microsecond to a phase (or to "driver" for time outside any
// phase).
type PathStep struct {
	// Phase is "map", "shuffle", "reduce" or "driver".
	Phase string `json:"phase"`
	// Kind is "attempt" (a bounding task attempt ran), "wait" (inside
	// a phase but off any bounding attempt: slot queueing, merge
	// scheduling), "merge" (the shuffle's bounding partition merge) or
	// "driver" (between phases: split computation, output commit).
	Kind string `json:"kind"`
	// Task/Attempt/Node identify the bounding attempt for attempt steps.
	Task    string `json:"task,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Node    string `json:"node,omitempty"`
	// StartUs/EndUs bound the segment (tree-anchored microseconds).
	StartUs int64 `json:"start_us"`
	EndUs   int64 `json:"end_us"`
}

// DurUs returns the step duration in microseconds.
func (p PathStep) DurUs() int64 { return p.EndUs - p.StartUs }

// PhaseCost is the critical-path attribution of one phase.
type PhaseCost struct {
	// Phase is the phase name ("driver" for out-of-phase time).
	Phase string `json:"phase"`
	// DurUs is the critical-path time attributed to the phase.
	DurUs int64 `json:"dur_us"`
	// Pct is DurUs as a percentage of job wall-clock.
	Pct float64 `json:"pct"`
}

// Straggler is an attempt flagged as slow relative to its phase.
type Straggler struct {
	Phase   string `json:"phase"`
	Task    string `json:"task"`
	Attempt int    `json:"attempt"`
	Node    string `json:"node"`
	// DurUs and MedianUs compare the attempt to its phase median.
	DurUs    int64 `json:"dur_us"`
	MedianUs int64 `json:"median_us"`
	// Factor is DurUs / MedianUs.
	Factor float64 `json:"factor"`
	// Speculated reports that speculative execution engaged on the
	// task: some attempt of it was killed as a losing backup.
	Speculated bool `json:"speculated"`
	// LostToBackup reports this attempt itself was the killed loser.
	LostToBackup bool `json:"lost_to_backup"`
}

// SkewReport summarises the reduce-partition distribution of one
// job's shuffle.
type SkewReport struct {
	// Partitions is the reduce partition count.
	Partitions int `json:"partitions"`
	// TotalRecords/TotalBytes sum over partitions.
	TotalRecords int64 `json:"total_records"`
	TotalBytes   int64 `json:"total_bytes"`
	// MaxPart is the hottest partition by bytes.
	MaxPart obs.PartStat `json:"max_part"`
	// Imbalance is max partition bytes over mean partition bytes
	// (1.0 = perfectly balanced). By-records when bytes are all zero.
	Imbalance float64 `json:"imbalance"`
	// Hot lists partitions exceeding SkewFactor × mean bytes (or
	// records), hottest first. A single-partition shuffle — the
	// paper's DJ-Cluster merge — is always flagged when other
	// partitions would have been available.
	Hot []obs.PartStat `json:"hot,omitempty"`
}

// RPCReport attributes remote-execution overhead for a job run on the
// out-of-process backend, from the rpc/exec sub-attempt spans. For
// each remote attempt, coordination overhead is the attempt wall not
// covered by the worker-side execution window: assignment delivery,
// queueing in the worker, and the completion report's trip back.
type RPCReport struct {
	// RemoteAttempts is how many attempts carried rpc/exec detail.
	RemoteAttempts int `json:"remote_attempts"`
	// RPCUs sums the driver-observed assign→complete round trips.
	RPCUs int64 `json:"rpc_us"`
	// ExecUs sums the worker-side execution windows.
	ExecUs int64 `json:"exec_us"`
	// CoordUs sums max(0, attempt wall − exec window) over remote
	// attempts: total coordination overhead paid across the job.
	CoordUs int64 `json:"coord_us"`
	// PathCoordUs is the coordination overhead of attempts on the
	// critical path — the share that actually cost wall-clock time —
	// and PathCoordPct is it as a percentage of the job wall.
	PathCoordUs  int64   `json:"path_coord_us"`
	PathCoordPct float64 `json:"path_coord_pct"`
}

// JobAnalysis is the full bottleneck report for one job span.
type JobAnalysis struct {
	// Job is the job name.
	Job string `json:"job"`
	// WallUs is the job wall-clock.
	WallUs int64 `json:"wall_us"`
	// Status echoes the job span status.
	Status string `json:"status"`
	// Path is the critical path: contiguous steps tiling the job wall.
	Path []PathStep `json:"path"`
	// Phases attributes the critical path per phase, job order, then
	// "driver". Durations sum exactly to WallUs.
	Phases []PhaseCost `json:"phases"`
	// Stragglers are flagged slow attempts, slowest first.
	Stragglers []Straggler `json:"stragglers,omitempty"`
	// Skew is the shuffle partition distribution, when recorded.
	Skew *SkewReport `json:"skew,omitempty"`
	// RPC attributes remote-execution overhead; nil for jobs run
	// in-process (no rpc/exec sub-attempt spans).
	RPC *RPCReport `json:"rpc,omitempty"`
}

// Analysis is the report for a whole tree.
type Analysis struct {
	// Root is the tree's root span name.
	Root string `json:"root"`
	// WallUs is the root span wall-clock.
	WallUs int64 `json:"wall_us"`
	// Jobs are the per-job analyses in start order.
	Jobs []JobAnalysis `json:"jobs"`
}

// AnalyzeTree runs every analysis pass over a tree.
func AnalyzeTree(t *Tree, opts Options) *Analysis {
	opts = opts.withDefaults()
	a := &Analysis{Root: t.Root.Name, WallUs: t.WallUs()}
	for _, j := range t.Root.Jobs() {
		a.Jobs = append(a.Jobs, analyzeJob(j, opts))
	}
	return a
}

// AnalyzeJob runs the passes over one job span.
func AnalyzeJob(job *Span, opts Options) JobAnalysis {
	return analyzeJob(job, opts.withDefaults())
}

func analyzeJob(job *Span, opts Options) JobAnalysis {
	ja := JobAnalysis{Job: job.Name, WallUs: job.DurUs(), Status: job.Status}
	ja.Path = criticalPath(job)
	ja.Phases = attribute(ja.Path, job)
	ja.Stragglers = stragglers(job, opts.StragglerFactor)
	ja.Skew = skew(job, opts.SkewFactor)
	ja.RPC = rpcOverhead(job, ja.Path)
	return ja
}

// rpcOverhead folds the rpc/exec sub-attempt spans into an RPCReport,
// or nil when the job ran in-process (no such spans).
func rpcOverhead(job *Span, path []PathStep) *RPCReport {
	r := &RPCReport{}
	coord := make(map[string]int64) // phase\x00task\x00attempt → coord µs
	found := false
	for _, phase := range job.Children {
		if phase.Kind != KindPhase {
			continue
		}
		for _, a := range phase.Children {
			if a.Kind != KindAttempt {
				continue
			}
			var execUs int64
			hasDetail := false
			for _, c := range a.Children {
				switch c.Kind {
				case KindRPC:
					r.RPCUs += c.DurUs()
					hasDetail = true
				case KindExec:
					execUs += c.DurUs()
					hasDetail = true
				}
			}
			if !hasDetail {
				continue
			}
			found = true
			r.RemoteAttempts++
			r.ExecUs += execUs
			if c := a.DurUs() - execUs; c > 0 {
				r.CoordUs += c
				coord[subKey(phase.Name, a.Name, a.Attempt)] = c
			}
		}
	}
	if !found {
		return nil
	}
	// Coordination on the critical path: attempt steps may be truncated
	// by the backwards chain, so attribute each bounding attempt's full
	// coordination overhead once (a slight over-attribution for
	// truncated steps, bounded by the truncation itself).
	counted := make(map[string]bool)
	for _, st := range path {
		if st.Kind != "attempt" {
			continue
		}
		key := subKey(st.Phase, st.Task, st.Attempt)
		if counted[key] {
			continue
		}
		counted[key] = true
		r.PathCoordUs += coord[key]
	}
	if wall := job.DurUs(); wall > 0 {
		r.PathCoordPct = 100 * float64(r.PathCoordUs) / float64(wall)
	}
	return r
}

func subKey(phase, task string, attempt int) string {
	return fmt.Sprintf("%s\x00%s\x00%d", phase, task, attempt)
}

// criticalPath builds the chain of segments that bounded the job's
// wall-clock. Each phase is a barrier: it ends when its last attempt
// (or partition merge) finishes, so the bounding chain inside a phase
// is reconstructed backwards from the phase end — the last-finishing
// attempt, then the latest attempt finishing before it started (whose
// completion freed the slot), and so on; residual time inside the
// phase is "wait" and time between phases is "driver". The segments
// tile [job start, job end] exactly.
func criticalPath(job *Span) []PathStep {
	var steps []PathStep
	cursor := job.StartUs
	for _, phase := range job.Children {
		if phase.Kind != KindPhase {
			continue
		}
		if phase.StartUs > cursor {
			steps = append(steps, PathStep{Phase: "driver", Kind: "driver",
				StartUs: cursor, EndUs: phase.StartUs})
			cursor = phase.StartUs
		}
		steps = append(steps, phaseChain(phase)...)
		if phase.EndUs > cursor {
			cursor = phase.EndUs
		}
	}
	if job.EndUs > cursor {
		steps = append(steps, PathStep{Phase: "driver", Kind: "driver",
			StartUs: cursor, EndUs: job.EndUs})
	}
	return steps
}

// phaseChain reconstructs the bounding chain inside one phase,
// returning contiguous steps covering [phase.StartUs, phase.EndUs].
func phaseChain(phase *Span) []PathStep {
	// Completed attempts, by end time descending.
	var done []*Span
	for _, c := range phase.Children {
		if c.Kind == KindAttempt && c.Status != StatusRunning {
			done = append(done, c)
		}
	}
	sort.SliceStable(done, func(i, j int) bool { return done[i].EndUs > done[j].EndUs })

	if len(done) == 0 {
		// No attempts: the shuffle. Attribute the bounding partition
		// merge when recorded, otherwise the whole phase is one step.
		if len(phase.Parts) > 0 {
			var maxDur int64
			var hot obs.PartStat
			for _, p := range phase.Parts {
				if p.DurUs >= maxDur {
					maxDur = p.DurUs
					hot = p
				}
			}
			if maxDur > 0 && maxDur < phase.DurUs() {
				mid := phase.EndUs - maxDur
				return []PathStep{
					{Phase: phase.Name, Kind: "wait", StartUs: phase.StartUs, EndUs: mid},
					{Phase: phase.Name, Kind: "merge", Task: partName(hot.Part),
						StartUs: mid, EndUs: phase.EndUs},
				}
			}
			return []PathStep{{Phase: phase.Name, Kind: "merge",
				Task: partName(hot.Part), StartUs: phase.StartUs, EndUs: phase.EndUs}}
		}
		return []PathStep{{Phase: phase.Name, Kind: "wait",
			StartUs: phase.StartUs, EndUs: phase.EndUs}}
	}

	// Walk backwards from the phase end, chaining bounding attempts.
	var chain []PathStep
	t := phase.EndUs
	for t > phase.StartUs {
		// Latest-finishing attempt that started before t.
		var pick *Span
		for _, a := range done {
			if a.StartUs < t {
				pick = a
				break
			}
		}
		if pick == nil {
			break
		}
		end := pick.EndUs
		if end > t {
			end = t
		}
		if end < t {
			// Gap: nothing on the chain ran here (barrier latency).
			chain = append(chain, PathStep{Phase: phase.Name, Kind: "wait",
				StartUs: end, EndUs: t})
		}
		start := pick.StartUs
		if start < phase.StartUs {
			start = phase.StartUs
		}
		chain = append(chain, PathStep{Phase: phase.Name, Kind: "attempt",
			Task: pick.Task(), Attempt: pick.Attempt, Node: pick.Node,
			StartUs: start, EndUs: end})
		t = start
	}
	if t > phase.StartUs {
		chain = append(chain, PathStep{Phase: phase.Name, Kind: "wait",
			StartUs: phase.StartUs, EndUs: t})
	}
	// Built backwards; reverse into time order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// Task returns the attempt's task name (attempt spans store it in
// Name).
func (s *Span) Task() string { return s.Name }

func partName(p int) string {
	return "merge-p" + itoa4(p)
}

func itoa4(n int) string {
	const digits = "0123456789"
	buf := [4]byte{'0', '0', '0', '0'}
	for i := 3; i >= 0 && n > 0; i-- {
		buf[i] = digits[n%10]
		n /= 10
	}
	return string(buf[:])
}

// attribute folds path steps into per-phase costs, phase order first,
// "driver" last. Durations sum to the job wall by construction.
func attribute(steps []PathStep, job *Span) []PhaseCost {
	sums := make(map[string]int64)
	for _, st := range steps {
		sums[st.Phase] += st.DurUs()
	}
	wall := job.DurUs()
	var out []PhaseCost
	add := func(name string) {
		dur, ok := sums[name]
		if !ok {
			return
		}
		delete(sums, name)
		pc := PhaseCost{Phase: name, DurUs: dur}
		if wall > 0 {
			pc.Pct = 100 * float64(dur) / float64(wall)
		}
		out = append(out, pc)
	}
	for _, phase := range job.Children {
		if phase.Kind == KindPhase {
			add(phase.Name)
		}
	}
	add("driver")
	return out
}

// stragglers flags attempts slower than factor × their phase's median
// attempt duration, cross-referenced with speculative kills.
func stragglers(job *Span, factor float64) []Straggler {
	var out []Straggler
	for _, phase := range job.Children {
		if phase.Kind != KindPhase {
			continue
		}
		var durs []int64
		speculated := make(map[string]bool) // tasks with a killed attempt
		for _, a := range phase.Children {
			if a.Kind != KindAttempt || a.Status == StatusRunning {
				continue
			}
			durs = append(durs, a.DurUs())
			if a.Status == StatusKilled {
				speculated[a.Name] = true
			}
		}
		if len(durs) < 2 {
			continue
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		median := durs[len(durs)/2]
		if len(durs)%2 == 0 {
			median = (durs[len(durs)/2-1] + durs[len(durs)/2]) / 2
		}
		if median <= 0 {
			continue
		}
		for _, a := range phase.Children {
			if a.Kind != KindAttempt || a.Status == StatusRunning {
				continue
			}
			d := a.DurUs()
			if float64(d) > factor*float64(median) {
				out = append(out, Straggler{
					Phase: phase.Name, Task: a.Name, Attempt: a.Attempt, Node: a.Node,
					DurUs: d, MedianUs: median, Factor: float64(d) / float64(median),
					Speculated:   speculated[a.Name],
					LostToBackup: a.Status == StatusKilled,
				})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].DurUs > out[j].DurUs })
	return out
}

// skew summarises the shuffle partition distribution, flagging hot
// partitions.
func skew(job *Span, factor float64) *SkewReport {
	var parts []obs.PartStat
	for _, phase := range job.Children {
		if phase.Kind == KindPhase && phase.Name == "shuffle" && len(phase.Parts) > 0 {
			parts = phase.Parts
			break
		}
	}
	if len(parts) == 0 {
		return nil
	}
	r := &SkewReport{Partitions: len(parts)}
	for _, p := range parts {
		r.TotalRecords += p.Records
		r.TotalBytes += p.Bytes
		if p.Bytes > r.MaxPart.Bytes || (p.Bytes == r.MaxPart.Bytes && p.Records > r.MaxPart.Records) {
			r.MaxPart = p
		}
	}
	meanBytes := float64(r.TotalBytes) / float64(len(parts))
	meanRecs := float64(r.TotalRecords) / float64(len(parts))
	switch {
	case meanBytes > 0:
		r.Imbalance = float64(r.MaxPart.Bytes) / meanBytes
	case meanRecs > 0:
		r.Imbalance = float64(r.MaxPart.Records) / meanRecs
	default:
		r.Imbalance = 1
	}
	for _, p := range parts {
		hot := (meanBytes > 0 && float64(p.Bytes) > factor*meanBytes) ||
			(meanBytes == 0 && meanRecs > 0 && float64(p.Records) > factor*meanRecs)
		if hot {
			r.Hot = append(r.Hot, p)
		}
	}
	sort.SliceStable(r.Hot, func(i, j int) bool { return r.Hot[i].Bytes > r.Hot[j].Bytes })
	return r
}
