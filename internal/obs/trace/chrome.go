package trace

import (
	"encoding/json"
	"fmt"
	"sort"
)

// ChromeEvent is the subset of the Chrome trace_event schema the
// exporter emits: "X" complete events (ts + dur, microseconds) and "M"
// metadata events (process_name / thread_name). The subset loads in
// Perfetto and chrome://tracing.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the JSON-object trace container format.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Thread-ID layout of the export: tid 0 is the control lane (pipeline,
// job and phase spans, which nest by time containment), node attempt
// lanes follow from tid 1, per-partition shuffle-merge lanes start at
// mergeTidBase, and remote-worker execution lanes (clock-corrected
// worker-side task windows) start at execTidBase.
const (
	controlTid   = 0
	mergeTidBase = 1000
	execTidBase  = 2000
)

// EncodeChrome renders the tree as Chrome trace_event JSON. The output
// is deterministic for a given tree: events are emitted in a fixed
// walk order and json.Marshal sorts the args maps.
func EncodeChrome(t *Tree) ([]byte, error) {
	ct := BuildChrome(t)
	return json.MarshalIndent(ct, "", " ")
}

// BuildChrome assembles the event list without serialising, for tests
// and callers that want to post-process.
func BuildChrome(t *Tree) *ChromeTrace {
	ct := &ChromeTrace{DisplayTimeUnit: "ms"}
	meta := func(name string, tid int, args map[string]any) {
		ct.TraceEvents = append(ct.TraceEvents, ChromeEvent{
			Name: name, Ph: "M", Pid: 1, Tid: tid, Args: args,
		})
	}
	complete := func(name, cat string, tid int, startUs, durUs int64, args map[string]any) {
		if durUs < 0 {
			durUs = 0
		}
		d := durUs
		ct.TraceEvents = append(ct.TraceEvents, ChromeEvent{
			Name: name, Cat: cat, Ph: "X", Ts: startUs, Dur: &d,
			Pid: 1, Tid: tid, Args: args,
		})
	}

	meta("process_name", controlTid, map[string]any{"name": t.Root.Name})
	meta("thread_name", controlTid, map[string]any{"name": "control"})

	// Lane-pack attempts per node so concurrent attempts on one node
	// (multiple task slots) get separate, stable thread IDs.
	type lane struct {
		node string
		idx  int
		end  int64
	}
	var lanes []*lane
	laneTid := make(map[*lane]int)
	nodeLanes := make(map[string][]*lane)
	mergeTids := make(map[int]bool)

	var attempts []*Span
	t.Root.Walk(func(s *Span) {
		if s.Kind == KindAttempt {
			attempts = append(attempts, s)
		}
	})
	sort.SliceStable(attempts, func(i, j int) bool {
		if attempts[i].StartUs != attempts[j].StartUs {
			return attempts[i].StartUs < attempts[j].StartUs
		}
		return attempts[i].Name < attempts[j].Name
	})
	attemptLane := make(map[*Span]*lane)
	for _, a := range attempts {
		var l *lane
		for _, cand := range nodeLanes[a.Node] {
			if cand.end <= a.StartUs {
				l = cand
				break
			}
		}
		if l == nil {
			l = &lane{node: a.Node, idx: len(nodeLanes[a.Node])}
			nodeLanes[a.Node] = append(nodeLanes[a.Node], l)
			lanes = append(lanes, l)
		}
		l.end = a.EndUs
		attemptLane[a] = l
	}
	// Stable tid assignment: nodes sorted, lanes in creation order.
	var nodes []string
	for n := range nodeLanes {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	tid := 1
	for _, n := range nodes {
		for _, l := range nodeLanes[n] {
			laneTid[l] = tid
			name := l.node
			if l.idx > 0 {
				name = fmt.Sprintf("%s #%d", l.node, l.idx+1)
			}
			meta("thread_name", tid, map[string]any{"name": name})
			tid++
		}
	}

	// Remote-worker execution lanes: exec spans (clock-corrected
	// worker-side task windows) lane-packed per node from execTidBase,
	// so the aligned worker timelines sit under the driver's view.
	var execs []*Span
	t.Root.Walk(func(s *Span) {
		if s.Kind == KindExec {
			execs = append(execs, s)
		}
	})
	sort.SliceStable(execs, func(i, j int) bool {
		if execs[i].StartUs != execs[j].StartUs {
			return execs[i].StartUs < execs[j].StartUs
		}
		return execs[i].Name < execs[j].Name
	})
	execLanes := make(map[string][]*lane)
	execLane := make(map[*Span]*lane)
	for _, s := range execs {
		var l *lane
		for _, cand := range execLanes[s.Node] {
			if cand.end <= s.StartUs {
				l = cand
				break
			}
		}
		if l == nil {
			l = &lane{node: s.Node, idx: len(execLanes[s.Node])}
			execLanes[s.Node] = append(execLanes[s.Node], l)
		}
		l.end = s.EndUs
		execLane[s] = l
	}
	var execNodes []string
	for n := range execLanes {
		execNodes = append(execNodes, n)
	}
	sort.Strings(execNodes)
	execTid := execTidBase
	for _, n := range execNodes {
		for _, l := range execLanes[n] {
			laneTid[l] = execTid
			name := fmt.Sprintf("%s (worker)", l.node)
			if l.idx > 0 {
				name = fmt.Sprintf("%s (worker) #%d", l.node, l.idx+1)
			}
			meta("thread_name", execTid, map[string]any{"name": name})
			execTid++
		}
	}

	// Walk the tree: control spans on tid 0, attempts on node lanes,
	// shuffle Parts synthesised as merge spans on partition lanes
	// (their start is approximated at the phase start; the engine
	// records only each merge's duration).
	t.Root.Walk(func(s *Span) {
		args := map[string]any{"status": s.Status}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		if s.Error != "" {
			args["error"] = s.Error
		}
		switch s.Kind {
		case KindPipeline, KindJob:
			complete(s.Name, s.Kind, controlTid, s.StartUs, s.DurUs(), args)
		case KindPhase:
			if s.Value > 0 {
				args["bytes"] = s.Value
			}
			complete(s.Name, s.Kind, controlTid, s.StartUs, s.DurUs(), args)
			for _, p := range s.Parts {
				mt := mergeTidBase + p.Part
				if !mergeTids[mt] {
					mergeTids[mt] = true
					meta("thread_name", mt, map[string]any{
						"name": fmt.Sprintf("merge p%d", p.Part),
					})
				}
				complete(fmt.Sprintf("merge-p%04d", p.Part), "merge", mt, s.StartUs, p.DurUs,
					map[string]any{"runs": p.Runs, "records": p.Records, "bytes": p.Bytes})
			}
		case KindAttempt:
			args["attempt"] = s.Attempt
			if s.Locality != "" {
				args["locality"] = s.Locality
			}
			if s.Backup {
				args["backup"] = true
			}
			name := fmt.Sprintf("%s/%d", s.Name, s.Attempt)
			complete(name, s.Kind, laneTid[attemptLane[s]], s.StartUs, s.DurUs(), args)
		case KindRPC:
			// Nested inside the attempt on the same lane: assign→complete
			// as seen from the driver, contained in the attempt span.
			st, dur := clampSpan(s)
			complete(fmt.Sprintf("rpc %s/%d", s.Name, s.Attempt), s.Kind,
				laneTid[attemptLane[parentAttempt(attempts, s)]], st, dur, args)
		case KindExec:
			st, dur := clampSpan(s)
			complete(fmt.Sprintf("exec %s/%d", s.Name, s.Attempt), s.Kind,
				laneTid[execLane[s]], st, dur, args)
		}
	})
	return ct
}

// clampSpan bounds a sub-attempt span at the tree origin: imperfect
// clock correction can push a worker-side window slightly before the
// root anchor, which DecodeChrome rejects as a negative timestamp.
func clampSpan(s *Span) (startUs, durUs int64) {
	startUs = s.StartUs
	end := s.EndUs
	if startUs < 0 {
		startUs = 0
	}
	if end < startUs {
		end = startUs
	}
	return startUs, end - startUs
}

// parentAttempt finds the attempt span owning a sub-attempt child.
func parentAttempt(attempts []*Span, child *Span) *Span {
	for _, a := range attempts {
		for _, c := range a.Children {
			if c == child {
				return a
			}
		}
	}
	return nil
}

// DecodeChrome parses Chrome trace_event JSON back into the schema
// subset and validates it: only "X" and "M" phases, non-negative
// timestamps, a duration on every complete event and a name on every
// event. It is the round-trip check that the export stays loadable.
func DecodeChrome(data []byte) (*ChromeTrace, error) {
	var ct ChromeTrace
	if err := json.Unmarshal(data, &ct); err != nil {
		return nil, fmt.Errorf("trace: decoding chrome trace: %v", err)
	}
	for i, e := range ct.TraceEvents {
		switch e.Ph {
		case "X":
			if e.Dur == nil {
				return nil, fmt.Errorf("trace: event %d (%q): complete event without dur", i, e.Name)
			}
			if *e.Dur < 0 || e.Ts < 0 {
				return nil, fmt.Errorf("trace: event %d (%q): negative ts/dur", i, e.Name)
			}
		case "M":
			if e.Args["name"] == nil {
				return nil, fmt.Errorf("trace: event %d: metadata event without args.name", i)
			}
		default:
			return nil, fmt.Errorf("trace: event %d (%q): unsupported phase %q", i, e.Name, e.Ph)
		}
		if e.Name == "" {
			return nil, fmt.Errorf("trace: event %d: empty name", i)
		}
	}
	return &ct, nil
}
