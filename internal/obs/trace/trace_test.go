package trace

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// serve runs one request through a handler and returns body + status.
func serve(t *testing.T, h http.Handler, url string) (string, int) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec.Body.String(), rec.Code
}

var fixtureBase = time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)

// at returns the fixture base time plus an offset in microseconds.
func at(us int64) time.Time { return fixtureBase.Add(time.Duration(us) * time.Microsecond) }

// fixtureEvents is a deterministic pipeline run: a root span holding a
// sub-span holding one job, with a straggling map task rescued by a
// speculative backup, a failed-then-retried map task, a skewed
// three-partition shuffle, and two reducers.
func fixtureEvents() []obs.Event {
	mk := func(t obs.EventType, us int64, f obs.Event) obs.Event {
		f.Type = t
		f.Time = at(us)
		return f
	}
	return []obs.Event{
		mk(obs.SpanStart, 0, obs.Event{Span: "pipe", Detail: "fixture"}),
		mk(obs.SpanStart, 1000, obs.Event{Span: "pipe/sub", Parent: "pipe"}),
		mk(obs.JobSubmitted, 2000, obs.Event{Job: "job-a", Parent: "pipe/sub", Detail: "maps=3 reducers=3"}),
		mk(obs.PhaseStart, 2100, obs.Event{Job: "job-a", Phase: "map"}),
		mk(obs.AttemptStarted, 2200, obs.Event{Job: "job-a", Phase: "map", Task: "map-0000", Node: "n1", Locality: "data-local"}),
		mk(obs.AttemptStarted, 2200, obs.Event{Job: "job-a", Phase: "map", Task: "map-0001", Node: "n2"}),
		mk(obs.AttemptStarted, 2200, obs.Event{Job: "job-a", Phase: "map", Task: "map-0002", Node: "n3"}),
		mk(obs.AttemptFailed, 2500, obs.Event{Job: "job-a", Phase: "map", Task: "map-0002", Node: "n3", Err: "boom"}),
		mk(obs.AttemptStarted, 2600, obs.Event{Job: "job-a", Phase: "map", Task: "map-0002", Attempt: 1, Node: "n1"}),
		mk(obs.AttemptSucceeded, 3000, obs.Event{Job: "job-a", Phase: "map", Task: "map-0000", Node: "n1", Locality: "data-local"}),
		mk(obs.AttemptSucceeded, 3100, obs.Event{Job: "job-a", Phase: "map", Task: "map-0002", Attempt: 1, Node: "n1"}),
		// map-0001 straggles; a backup on n1 wins, the original is killed.
		mk(obs.AttemptStarted, 4000, obs.Event{Job: "job-a", Phase: "map", Task: "map-0001", Attempt: 1, Node: "n1", Backup: true}),
		mk(obs.AttemptSucceeded, 4500, obs.Event{Job: "job-a", Phase: "map", Task: "map-0001", Attempt: 1, Node: "n1", Backup: true}),
		mk(obs.AttemptKilled, 4600, obs.Event{Job: "job-a", Phase: "map", Task: "map-0001", Node: "n2"}),
		mk(obs.PhaseEnd, 5000, obs.Event{Job: "job-a", Phase: "map"}),
		mk(obs.PhaseStart, 5100, obs.Event{Job: "job-a", Phase: "shuffle"}),
		mk(obs.PhaseEnd, 6000, obs.Event{Job: "job-a", Phase: "shuffle", Value: 6000, Parts: []obs.PartStat{
			{Part: 0, Runs: 1, Records: 2, Bytes: 100, DurUs: 50},
			{Part: 1, Runs: 1, Records: 4, Bytes: 200, DurUs: 60},
			{Part: 2, Runs: 3, Records: 94, Bytes: 5700, DurUs: 700},
		}}),
		mk(obs.PhaseStart, 6100, obs.Event{Job: "job-a", Phase: "reduce"}),
		mk(obs.AttemptStarted, 6200, obs.Event{Job: "job-a", Phase: "reduce", Task: "reduce-0000", Node: "n2"}),
		mk(obs.AttemptStarted, 6200, obs.Event{Job: "job-a", Phase: "reduce", Task: "reduce-0001", Node: "n3"}),
		mk(obs.AttemptSucceeded, 6500, obs.Event{Job: "job-a", Phase: "reduce", Task: "reduce-0001", Node: "n3"}),
		mk(obs.AttemptSucceeded, 7000, obs.Event{Job: "job-a", Phase: "reduce", Task: "reduce-0000", Node: "n2"}),
		mk(obs.PhaseEnd, 7100, obs.Event{Job: "job-a", Phase: "reduce"}),
		mk(obs.JobFinished, 7200, obs.Event{Job: "job-a", Dur: 5200 * time.Microsecond}),
		mk(obs.SpanEnd, 7300, obs.Event{Span: "pipe/sub"}),
		mk(obs.SpanEnd, 7500, obs.Event{Span: "pipe"}),
	}
}

func TestAssembleBuildsCausalTree(t *testing.T) {
	trees := Assemble(fixtureEvents())
	if len(trees) != 1 {
		t.Fatalf("trees: %d, want 1", len(trees))
	}
	tr := trees[0]
	root := tr.Root
	if root.Kind != KindPipeline || root.Name != "pipe" {
		t.Fatalf("root = %s %q", root.Kind, root.Name)
	}
	if root.StartUs != 0 || root.EndUs != 7500 {
		t.Errorf("root span [%d,%d], want [0,7500]", root.StartUs, root.EndUs)
	}
	if tr.StartUnixMs != fixtureBase.UnixMilli() {
		t.Errorf("anchor = %d, want %d", tr.StartUnixMs, fixtureBase.UnixMilli())
	}
	if len(root.Children) != 1 || root.Children[0].Name != "pipe/sub" {
		t.Fatalf("root children: %+v", root.Children)
	}
	job := root.Job("job-a")
	if job == nil {
		t.Fatal("job-a not linked under the pipeline")
	}
	if job.StartUs != 2000 || job.EndUs != 7200 || job.Status != StatusSucceeded {
		t.Errorf("job span: [%d,%d] %s", job.StartUs, job.EndUs, job.Status)
	}
	if len(job.Children) != 3 {
		t.Fatalf("phases: %d, want 3", len(job.Children))
	}
	mapPhase := job.Children[0]
	if mapPhase.Name != "map" || len(mapPhase.Children) != 5 {
		t.Fatalf("map phase %q with %d attempts, want 5", mapPhase.Name, len(mapPhase.Children))
	}
	statuses := map[string]string{}
	for _, a := range mapPhase.Children {
		statuses[a.Name+"/"+itoa4(a.Attempt)] = a.Status
	}
	for key, want := range map[string]string{
		"map-0000/0000": StatusSucceeded,
		"map-0001/0000": StatusKilled,
		"map-0001/0001": StatusSucceeded,
		"map-0002/0000": StatusFailed,
		"map-0002/0001": StatusSucceeded,
	} {
		if statuses[key] != want {
			t.Errorf("attempt %s status = %q, want %q", key, statuses[key], want)
		}
	}
	// The backup winner keeps its Backup mark; the failure its error.
	for _, a := range mapPhase.Children {
		if a.Name == "map-0001" && a.Attempt == 1 && !a.Backup {
			t.Error("backup attempt lost its Backup mark")
		}
		if a.Name == "map-0002" && a.Attempt == 0 && a.Error != "boom" {
			t.Errorf("failed attempt error = %q", a.Error)
		}
	}
	shuffle := job.Children[1]
	if shuffle.Name != "shuffle" || len(shuffle.Parts) != 3 || shuffle.Value != 6000 {
		t.Fatalf("shuffle span: %+v", shuffle)
	}
}

func TestAssembleClosesOpenSpansAtLastEvent(t *testing.T) {
	evs := fixtureEvents()
	// Cut the stream before the SpanEnds and the JobFinished.
	var cut []obs.Event
	for _, e := range evs {
		if e.Type == obs.SpanEnd || e.Type == obs.JobFinished {
			continue
		}
		cut = append(cut, e)
	}
	trees := Assemble(cut)
	if len(trees) != 1 {
		t.Fatalf("trees: %d, want 1", len(trees))
	}
	root := trees[0].Root
	if root.Status != StatusRunning {
		t.Errorf("open root status = %q", root.Status)
	}
	// The open root extends to the last event beneath it (reduce
	// PhaseEnd at 7100).
	if root.EndUs != 7100 {
		t.Errorf("open root EndUs = %d, want 7100", root.EndUs)
	}
}

func TestCollectorFinalizesAndDropsLateEvents(t *testing.T) {
	c := NewCollector(nil, 2)
	bus := obs.NewBus(c)
	for _, e := range fixtureEvents() {
		bus.Emit(e)
	}
	trees := c.Finished()
	if len(trees) != 1 || trees[0].Root.Name != "pipe" {
		t.Fatalf("finished trees: %+v", trees)
	}
	if trees[0].Seq != 1 {
		t.Errorf("seq = %d, want 1", trees[0].Seq)
	}
	// A late kill for the closed job must be dropped, not grow a group.
	bus.Emit(obs.Event{Type: obs.AttemptKilled, Time: at(9000),
		Job: "job-a", Phase: "map", Task: "map-0001", Node: "n2"})
	if got := c.Finished(); len(got) != 1 {
		t.Fatalf("late event created a tree: %d", len(got))
	}
	c.mu.Lock()
	pending := len(c.groups)
	c.mu.Unlock()
	if pending != 0 {
		t.Errorf("late event leaked a pending group")
	}

	// A standalone job (no pipeline span) becomes its own root and
	// finalizes on JobFinished.
	bus.Emit(obs.Event{Type: obs.JobSubmitted, Time: at(10000), Job: "solo"})
	bus.Emit(obs.Event{Type: obs.JobFinished, Time: at(11000), Job: "solo"})
	trees = c.Finished()
	if len(trees) != 2 || trees[1].Root.Kind != KindJob || trees[1].Root.Name != "solo" {
		t.Fatalf("standalone job tree: %+v", trees)
	}
	if tr, ok := c.Find("solo"); !ok || tr.Root.Name != "solo" {
		t.Error("Find(solo) failed")
	}
	if tr, ok := c.Find("job-a"); !ok || tr.Root.Name != "pipe" {
		t.Error("Find by contained job name failed")
	}

	// The ring is bounded: a third root evicts the oldest.
	bus.Emit(obs.Event{Type: obs.JobSubmitted, Time: at(12000), Job: "solo-2"})
	bus.Emit(obs.Event{Type: obs.JobFinished, Time: at(13000), Job: "solo-2"})
	trees = c.Finished()
	if len(trees) != 2 || trees[0].Root.Name != "solo" || trees[1].Root.Name != "solo-2" {
		t.Fatalf("bounded ring: %+v", trees)
	}
}

func TestStoreRoundTripAndRetention(t *testing.T) {
	st := NewStore(obs.NewDirFS(t.TempDir()))
	st.SetMaxTraces(2)
	for _, evs := range [][]obs.Event{fixtureEvents(), fixtureEvents(), fixtureEvents()} {
		for _, tr := range Assemble(evs) {
			if _, err := st.Save(tr); err != nil {
				t.Fatal(err)
			}
		}
	}
	trees, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Fatalf("retained trees: %d, want 2", len(trees))
	}
	if trees[0].Seq != 2 || trees[1].Seq != 3 {
		t.Errorf("retained seqs = %d,%d; want 2,3 (oldest pruned)", trees[0].Seq, trees[1].Seq)
	}
	// The round-tripped tree is structurally intact.
	got := trees[1]
	if got.Root.Name != "pipe" || got.Root.Job("job-a") == nil {
		t.Fatalf("round-tripped tree lost structure: %+v", got.Root)
	}
	if parts := got.Root.Job("job-a").Children[1].Parts; len(parts) != 3 || parts[2].Bytes != 5700 {
		t.Errorf("round-tripped Parts: %+v", parts)
	}
	if _, ok := st.Find("job-a"); !ok {
		t.Error("store Find by job name failed")
	}
	if _, ok := st.Find("3"); !ok {
		t.Error("store Find by seq failed")
	}
	if _, ok := st.Find("nope"); ok {
		t.Error("store Find matched a missing key")
	}
}

func TestChromeExportGolden(t *testing.T) {
	trees := Assemble(fixtureEvents())
	data, err := EncodeChrome(trees[0])
	if err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "chrome_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file missing (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if string(data) != string(want) {
		t.Errorf("chrome export drifted from golden file %s;\nrun UPDATE_GOLDEN=1 go test ./internal/obs/trace and review the diff", goldenPath)
	}
}

func TestChromeExportRoundTripsAgainstSchema(t *testing.T) {
	trees := Assemble(fixtureEvents())
	data, err := EncodeChrome(trees[0])
	if err != nil {
		t.Fatal(err)
	}
	ct, err := DecodeChrome(data)
	if err != nil {
		t.Fatalf("exported trace does not validate: %v", err)
	}
	var complete, meta, merges int
	threads := map[int]bool{}
	for _, e := range ct.TraceEvents {
		switch e.Ph {
		case "X":
			complete++
			threads[e.Tid] = true
			if e.Cat == "merge" {
				merges++
			}
		case "M":
			meta++
		}
	}
	// 1 pipeline + 1 sub-span + 1 job + 3 phases + 7 attempts + 3 merges.
	if complete != 16 {
		t.Errorf("complete events: %d, want 16", complete)
	}
	if merges != 3 {
		t.Errorf("merge events: %d, want 3", merges)
	}
	// Every referenced thread carries a thread_name metadata record.
	named := map[int]bool{}
	for _, e := range ct.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			named[e.Tid] = true
		}
	}
	for tid := range threads {
		if !named[tid] {
			t.Errorf("thread %d has no thread_name metadata", tid)
		}
	}
	if meta < len(named)+1 {
		t.Errorf("metadata events: %d, want at least %d", meta, len(named)+1)
	}
	// Malformed traces are rejected.
	if _, err := DecodeChrome([]byte(`{"traceEvents":[{"name":"x","ph":"B","ts":0,"pid":1,"tid":0}]}`)); err == nil {
		t.Error("unsupported phase not rejected")
	}
	if _, err := DecodeChrome([]byte(`{"traceEvents":[{"name":"x","ph":"X","ts":0,"pid":1,"tid":0}]}`)); err == nil {
		t.Error("complete event without dur not rejected")
	}
}

func TestAnalyzeCriticalPathTilesJobWall(t *testing.T) {
	trees := Assemble(fixtureEvents())
	a := AnalyzeTree(trees[0], Options{})
	if len(a.Jobs) != 1 {
		t.Fatalf("analyzed jobs: %d", len(a.Jobs))
	}
	ja := a.Jobs[0]
	if ja.Job != "job-a" || ja.WallUs != 5200 {
		t.Fatalf("job analysis: %s wall=%d", ja.Job, ja.WallUs)
	}
	// The path is contiguous from job start to job end...
	cursor := int64(0) // job-relative: first step starts at job.StartUs
	jobSpan := trees[0].Root.Job("job-a")
	cursor = jobSpan.StartUs
	for i, st := range ja.Path {
		if st.StartUs != cursor {
			t.Fatalf("step %d starts at %d, want %d (gap/overlap)", i, st.StartUs, cursor)
		}
		if st.DurUs() < 0 {
			t.Fatalf("step %d has negative duration", i)
		}
		cursor = st.EndUs
	}
	if cursor != jobSpan.EndUs {
		t.Fatalf("path ends at %d, want %d", cursor, jobSpan.EndUs)
	}
	// ...so the per-phase attribution sums exactly to the wall, and the
	// percentages to 100.
	var sum int64
	var pct float64
	for _, pc := range ja.Phases {
		sum += pc.DurUs
		pct += pc.Pct
	}
	if sum != ja.WallUs {
		t.Errorf("phase attribution sums to %d, want %d", sum, ja.WallUs)
	}
	if pct < 99.9 || pct > 100.1 {
		t.Errorf("percentages sum to %.2f", pct)
	}
	// The shuffle chain names the slowest partition merge.
	var mergeStep *PathStep
	for i := range ja.Path {
		if ja.Path[i].Kind == "merge" {
			mergeStep = &ja.Path[i]
		}
	}
	if mergeStep == nil || mergeStep.Task != "merge-p0002" {
		t.Errorf("shuffle critical step: %+v", mergeStep)
	}

	// Straggler pass: the killed original of map-0001 ran 2400µs against
	// a 500µs phase median — flagged, cross-referenced with the kill.
	if len(ja.Stragglers) == 0 {
		t.Fatal("no stragglers flagged")
	}
	s := ja.Stragglers[0]
	if s.Task != "map-0001" || s.Attempt != 0 {
		t.Fatalf("top straggler: %+v", s)
	}
	if !s.Speculated || !s.LostToBackup {
		t.Errorf("straggler speculation cross-ref: %+v", s)
	}

	// Skew pass: partition 2 holds 5700 of 6000 bytes.
	if ja.Skew == nil {
		t.Fatal("no skew report")
	}
	if ja.Skew.Partitions != 3 || ja.Skew.MaxPart.Part != 2 {
		t.Errorf("skew report: %+v", ja.Skew)
	}
	if ja.Skew.Imbalance < 2.8 || ja.Skew.Imbalance > 2.9 {
		t.Errorf("imbalance = %.2f, want 2.85", ja.Skew.Imbalance)
	}
	if len(ja.Skew.Hot) != 1 || ja.Skew.Hot[0].Part != 2 {
		t.Errorf("hot partitions: %+v", ja.Skew.Hot)
	}
}

func TestWriteReportMentionsEverySection(t *testing.T) {
	trees := Assemble(fixtureEvents())
	a := AnalyzeTree(trees[0], Options{})
	var sb strings.Builder
	WriteReport(&sb, trees[0], a)
	out := sb.String()
	for _, want := range []string{
		"job job-a", "critical path", "map", "shuffle skew",
		"stragglers", "map-0001/0", "lost to backup", "HOT p0002",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPHandlers(t *testing.T) {
	c := NewCollector(nil, 4)
	for _, e := range fixtureEvents() {
		c.Emit(e)
	}
	src := Multi(nil, c)
	// TraceHandler serves the tree and the chrome form.
	th := TraceHandler("/trace/", src)
	body, code := serve(t, th, "/trace/pipe")
	if code != 200 || !strings.Contains(body, `"kind": "pipeline"`) {
		t.Errorf("trace endpoint: code=%d body=%.120s", code, body)
	}
	body, code = serve(t, th, "/trace/pipe?format=chrome")
	if code != 200 || !strings.Contains(body, `"traceEvents"`) {
		t.Errorf("chrome endpoint: code=%d body=%.120s", code, body)
	}
	if _, err := DecodeChrome([]byte(body)); err != nil {
		t.Errorf("served chrome trace invalid: %v", err)
	}
	if _, code = serve(t, th, "/trace/absent"); code != 404 {
		t.Errorf("missing trace: code=%d", code)
	}
	// AnalyzeHandler serves JSON and text, honouring factor overrides.
	ah := AnalyzeHandler("/analyze/", src, Options{})
	body, code = serve(t, ah, "/analyze/job-a")
	if code != 200 || !strings.Contains(body, `"stragglers"`) {
		t.Errorf("analyze endpoint: code=%d body=%.120s", code, body)
	}
	body, code = serve(t, ah, "/analyze/job-a?format=text&slow=100")
	if code != 200 || strings.Contains(body, "stragglers (>") {
		t.Errorf("analyze text with slow=100 still flags stragglers: %.200s", body)
	}
}
