package trace

import (
	"fmt"
	"io"
	"time"
)

// WriteReport renders the analysis as the ASCII bottleneck report the
// `gepeto analyze` subcommand prints.
func WriteReport(w io.Writer, t *Tree, a *Analysis) {
	fmt.Fprintf(w, "trace %d  %s  started %s  wall %s\n",
		t.Seq, a.Root, t.Start().Format(time.RFC3339), usDur(a.WallUs))
	for i := range a.Jobs {
		ja := &a.Jobs[i]
		fmt.Fprintf(w, "\njob %s  wall %s  status %s\n", ja.Job, usDur(ja.WallUs), ja.Status)
		fmt.Fprintf(w, "  critical path (%d steps, phase attribution):\n", len(ja.Path))
		for _, pc := range ja.Phases {
			fmt.Fprintf(w, "    %-8s %8s  %5.1f%%  %s\n",
				pc.Phase, usDur(pc.DurUs), pc.Pct, bar(pc.Pct))
		}
		for _, st := range ja.Path {
			switch st.Kind {
			case "attempt":
				fmt.Fprintf(w, "    -> %-8s %8s  %s/%d on %s\n",
					st.Phase, usDur(st.DurUs()), st.Task, st.Attempt, st.Node)
			case "merge":
				fmt.Fprintf(w, "    -> %-8s %8s  %s\n", st.Phase, usDur(st.DurUs()), st.Task)
			default:
				fmt.Fprintf(w, "    -> %-8s %8s  (%s)\n", st.Phase, usDur(st.DurUs()), st.Kind)
			}
		}
		if len(ja.Stragglers) > 0 {
			fmt.Fprintf(w, "  stragglers (> factor x phase median):\n")
			for _, s := range ja.Stragglers {
				note := ""
				if s.LostToBackup {
					note = "  [killed: lost to backup]"
				} else if s.Speculated {
					note = "  [speculation engaged]"
				}
				fmt.Fprintf(w, "    %-8s %s/%d on %-10s %8s  %.1fx median (%s)%s\n",
					s.Phase, s.Task, s.Attempt, s.Node, usDur(s.DurUs), s.Factor,
					usDur(s.MedianUs), note)
			}
		}
		if ja.RPC != nil {
			r := ja.RPC
			fmt.Fprintf(w, "  rpc overhead: %d remote attempt(s), roundtrip %s, worker-exec %s, coordination %s\n",
				r.RemoteAttempts, usDur(r.RPCUs), usDur(r.ExecUs), usDur(r.CoordUs))
			fmt.Fprintf(w, "    on critical path: %s (%.1f%% of wall)\n",
				usDur(r.PathCoordUs), r.PathCoordPct)
		}
		if ja.Skew != nil {
			sk := ja.Skew
			fmt.Fprintf(w, "  shuffle skew: %d partition(s), %d records, %d bytes, imbalance %.2fx\n",
				sk.Partitions, sk.TotalRecords, sk.TotalBytes, sk.Imbalance)
			fmt.Fprintf(w, "    hottest: p%04d  runs=%d records=%d bytes=%d merge=%s\n",
				sk.MaxPart.Part, sk.MaxPart.Runs, sk.MaxPart.Records, sk.MaxPart.Bytes,
				usDur(sk.MaxPart.DurUs))
			for _, p := range sk.Hot {
				fmt.Fprintf(w, "    HOT p%04d: records=%d bytes=%d (imbalanced partition)\n",
					p.Part, p.Records, p.Bytes)
			}
		}
	}
}

// usDur renders a microsecond count as a duration string.
func usDur(us int64) string {
	return time.Duration(us * int64(time.Microsecond)).Round(time.Microsecond).String()
}

// bar renders a 0-100 percentage as a 20-char bar.
func bar(pct float64) string {
	n := int(pct/5 + 0.5)
	if n > 20 {
		n = 20
	}
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
