package trace

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/obs"
)

type wordMapper struct{ mapreduce.MapperBase }

func (wordMapper) Map(_ *mapreduce.TaskContext, _, value string, emit mapreduce.Emit) error {
	for _, w := range strings.Fields(value) {
		emit(w, "1")
	}
	return nil
}

type sumReducer struct{ mapreduce.ReducerBase }

func (sumReducer) Reduce(_ *mapreduce.TaskContext, key string, values []string, emit mapreduce.Emit) error {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		total += n
	}
	emit(key, strconv.Itoa(total))
	return nil
}

// TestEngineTracePhaseSumMatchesWall runs a real engine job through
// the collector and checks the acceptance criterion end to end: the
// critical path's per-phase durations sum to within 5% of the job's
// recorded wall-clock (by construction they sum exactly to the span
// wall; the 5% headroom covers event-stamping jitter against
// Result.Wall), and the Chrome export round-trips the schema.
func TestEngineTracePhaseSumMatchesWall(t *testing.T) {
	c, err := cluster.NewUniform(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := dfs.New(c, dfs.Config{ChunkSize: 1 << 10, Replication: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(NewStore(fs), 0)
	e := mapreduce.NewEngine(c, fs, mapreduce.Options{Obs: obs.NewBus(col)})
	if err := fs.Create("in/text", []byte(strings.Repeat("the quick brown fox jumps over the lazy dog\n", 200)), ""); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(&mapreduce.Job{
		Name:        "wordcount",
		InputPaths:  []string{"in"},
		OutputPath:  "out",
		NewMapper:   func() mapreduce.Mapper { return wordMapper{} },
		NewReducer:  func() mapreduce.Reducer { return sumReducer{} },
		NumReducers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	tr, ok := col.Find("wordcount")
	if !ok {
		t.Fatal("collector did not finalize the job tree")
	}
	a := AnalyzeTree(tr, Options{})
	if len(a.Jobs) != 1 {
		t.Fatalf("analyzed jobs: %d", len(a.Jobs))
	}
	ja := a.Jobs[0]
	var sum int64
	for _, pc := range ja.Phases {
		sum += pc.DurUs
	}
	wall := res.Wall.Microseconds()
	if wall <= 0 {
		t.Fatal("job recorded no wall time")
	}
	diff := sum - wall
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.05*float64(wall) {
		t.Errorf("phase durations sum to %dµs, recorded wall %dµs (off by %.1f%%, want ≤5%%)",
			sum, wall, 100*float64(diff)/float64(wall))
	}

	// The shuffle span carries one PartStat per reducer, and the skew
	// pass sees all the records.
	if ja.Skew == nil || ja.Skew.Partitions != 3 {
		t.Fatalf("skew report: %+v", ja.Skew)
	}
	if ja.Skew.TotalBytes != res.Counters.Value(mapreduce.CounterGroupShuffle, mapreduce.CounterShuffleBytes) {
		t.Errorf("skew bytes = %d, want shuffle_bytes counter", ja.Skew.TotalBytes)
	}

	// The persisted tree is findable and the Chrome export validates.
	st := NewStore(fs)
	stored, ok := st.Find("wordcount")
	if !ok {
		t.Fatal("tree not persisted to the store")
	}
	data, err := EncodeChrome(stored)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeChrome(data); err != nil {
		t.Errorf("persisted tree's chrome export invalid: %v", err)
	}
}
