// Package trace assembles the obs event stream into causal span trees
// — pipeline span → job → phase → task attempt, with per-partition
// merge detail — persists them alongside the job history, and exports
// Chrome trace_event JSON viewable in Perfetto or chrome://tracing.
//
// On top of the assembled tree it implements the analysis passes the
// paper's evaluation (§V) performs by hand: the critical path through
// a job's attempts and barriers, straggler detection against the phase
// median, and shuffle-skew detection from the per-partition merge
// statistics (the DJ-Cluster single-reducer merge being the motivating
// hot case).
package trace

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
)

// Span kinds, outermost first. A tree nests strictly in this order
// (pipeline spans may also nest inside each other).
const (
	KindPipeline = "pipeline"
	KindJob      = "job"
	KindPhase    = "phase"
	KindAttempt  = "attempt"
	// KindRPC and KindExec nest inside attempt spans of jobs run on the
	// out-of-process backend: the driver-observed assign→complete round
	// trip and the worker-side execution window (clock-corrected). The
	// attempt time not covered by exec is coordination overhead.
	KindRPC  = "rpc"
	KindExec = "exec"
)

// Span statuses.
const (
	StatusRunning   = "running"
	StatusSucceeded = "succeeded"
	StatusFailed    = "failed"
	StatusKilled    = "killed" // speculative loser
)

// Span is one node of a causal trace tree. Times are microsecond
// offsets from the owning Tree's StartUnixMs anchor, so trees survive
// JSON round trips losslessly and export directly to the microsecond
// timestamps the Chrome trace_event format wants.
type Span struct {
	// Kind is pipeline, job, phase or attempt.
	Kind string `json:"kind"`
	// Name identifies the span: the span ID for pipelines, job name for
	// jobs, "map"/"shuffle"/"reduce" for phases, task ID for attempts.
	Name string `json:"name"`
	// Attempt is the 0-based attempt number (attempt spans only).
	Attempt int `json:"attempt,omitempty"`
	// Node is the executing cluster node (attempt spans only).
	Node string `json:"node,omitempty"`
	// Locality is the placement class when known (map attempts).
	Locality string `json:"locality,omitempty"`
	// Backup marks speculative attempts.
	Backup bool `json:"backup,omitempty"`
	// Status is running, succeeded, failed or killed.
	Status string `json:"status"`
	// Error is the failure reason for failed spans.
	Error string `json:"error,omitempty"`
	// Detail is free-form context from the underlying event.
	Detail string `json:"detail,omitempty"`
	// StartUs and EndUs are microsecond offsets from Tree.StartUnixMs.
	// EndUs == StartUs for spans still open when the tree was cut.
	StartUs int64 `json:"start_us"`
	EndUs   int64 `json:"end_us"`
	// Value carries the event magnitude (shuffle bytes on the shuffle
	// phase span).
	Value int64 `json:"value,omitempty"`
	// Parts is the per-reduce-partition merge summary (shuffle phase
	// spans only), the input to skew analysis.
	Parts []obs.PartStat `json:"parts,omitempty"`
	// Children are the nested spans, ordered by StartUs.
	Children []*Span `json:"children,omitempty"`
}

// DurUs returns the span duration in microseconds.
func (s *Span) DurUs() int64 { return s.EndUs - s.StartUs }

// Walk visits the span and all descendants depth-first.
func (s *Span) Walk(fn func(*Span)) {
	fn(s)
	for _, c := range s.Children {
		c.Walk(fn)
	}
}

// Job returns the descendant job span with the given name, or the span
// itself if it is that job.
func (s *Span) Job(name string) *Span {
	var found *Span
	s.Walk(func(n *Span) {
		if found == nil && n.Kind == KindJob && n.Name == name {
			found = n
		}
	})
	return found
}

// Jobs returns every job span in the tree, in start order.
func (s *Span) Jobs() []*Span {
	var out []*Span
	s.Walk(func(n *Span) {
		if n.Kind == KindJob {
			out = append(out, n)
		}
	})
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartUs < out[j].StartUs })
	return out
}

// Tree is one fully assembled causal trace: a root pipeline span or a
// standalone job, anchored to wall-clock time.
type Tree struct {
	// Seq orders trees within a store.
	Seq int `json:"seq"`
	// StartUnixMs anchors the tree's microsecond offsets to wall time.
	StartUnixMs int64 `json:"start_unix_ms"`
	// Root is the outermost span.
	Root *Span `json:"root"`
}

// Start returns the anchor time.
func (t *Tree) Start() time.Time { return time.UnixMilli(t.StartUnixMs) }

// WallUs returns the root span's duration in microseconds.
func (t *Tree) WallUs() int64 { return t.Root.DurUs() }

// Assemble builds causal trace trees from a recorded event stream. It
// returns one tree per root: every span or job whose Parent is empty
// or names a span absent from the stream. Events arriving out of
// causal order (a child span starting before its parent's SpanStart
// was recorded) still attach, because linking happens after a full
// pass over the stream. Spans left open are closed at the last event
// time seen in their subtree.
func Assemble(events []obs.Event) []*Tree {
	a := newAssembler()
	for _, e := range events {
		a.add(e)
	}
	return a.finish()
}

// assembler incrementally folds events into per-root trees. The
// Collector reuses it per root group; Assemble drives it in one shot.
type assembler struct {
	anchor   time.Time
	spans    map[string]*Span // open+closed pipeline spans by ID
	jobs     map[string]*Span // job spans by name
	phases   map[string]*Span // open phase spans by job+"\x00"+phase
	attempts map[string]*Span // attempt spans by job+phase+task+attempt
	order    []*Span          // root candidates in first-seen order
	parents  map[*Span]string // declared parent span ID per span/job
}

func newAssembler() *assembler {
	return &assembler{
		spans:    make(map[string]*Span),
		jobs:     make(map[string]*Span),
		phases:   make(map[string]*Span),
		attempts: make(map[string]*Span),
		parents:  make(map[*Span]string),
	}
}

// us converts an event time to the microsecond offset from the anchor,
// establishing the anchor on first use.
func (a *assembler) us(t time.Time) int64 {
	if a.anchor.IsZero() {
		a.anchor = t
	}
	return t.Sub(a.anchor).Microseconds()
}

func attemptKey(e obs.Event) string {
	return fmt.Sprintf("%s\x00%s\x00%s\x00%d", e.Job, e.Phase, e.Task, e.Attempt)
}

func (a *assembler) add(e obs.Event) {
	ts := a.us(e.Time)
	switch e.Type {
	case obs.SpanStart:
		s := &Span{Kind: KindPipeline, Name: e.Span, Status: StatusRunning,
			Detail: e.Detail, StartUs: ts, EndUs: ts}
		a.spans[e.Span] = s
		a.parents[s] = e.Parent
		a.order = append(a.order, s)
	case obs.SpanEnd:
		if s, ok := a.spans[e.Span]; ok {
			s.EndUs = ts
			s.Status = StatusSucceeded
			if e.Err != "" {
				s.Status = StatusFailed
				s.Error = e.Err
			}
		}
	case obs.JobSubmitted:
		j := &Span{Kind: KindJob, Name: e.Job, Status: StatusRunning,
			Detail: e.Detail, StartUs: ts, EndUs: ts}
		a.jobs[e.Job] = j
		a.parents[j] = e.Parent
		a.order = append(a.order, j)
	case obs.JobFinished:
		if j, ok := a.jobs[e.Job]; ok {
			j.EndUs = ts
			j.Status = StatusSucceeded
			if e.Err != "" {
				j.Status = StatusFailed
				j.Error = e.Err
			}
		}
	case obs.PhaseStart:
		j := a.job(e.Job, ts)
		p := &Span{Kind: KindPhase, Name: e.Phase, Status: StatusRunning,
			Detail: e.Detail, StartUs: ts, EndUs: ts}
		a.phases[e.Job+"\x00"+e.Phase] = p
		j.Children = append(j.Children, p)
	case obs.PhaseEnd:
		p, ok := a.phases[e.Job+"\x00"+e.Phase]
		if !ok {
			p = &Span{Kind: KindPhase, Name: e.Phase, StartUs: ts}
			j := a.job(e.Job, ts)
			j.Children = append(j.Children, p)
		}
		p.EndUs = ts
		p.Status = StatusSucceeded
		p.Value = e.Value
		if e.Detail != "" {
			p.Detail = e.Detail
		}
		if len(e.Parts) > 0 {
			p.Parts = append([]obs.PartStat(nil), e.Parts...)
		}
	case obs.AttemptStarted:
		s := &Span{Kind: KindAttempt, Name: e.Task, Attempt: e.Attempt,
			Node: e.Node, Locality: e.Locality, Backup: e.Backup,
			Status: StatusRunning, StartUs: ts, EndUs: ts}
		a.attempts[attemptKey(e)] = s
		p := a.phase(e.Job, e.Phase, ts)
		p.Children = append(p.Children, s)
	case obs.AttemptSucceeded, obs.AttemptFailed, obs.AttemptKilled:
		s, ok := a.attempts[attemptKey(e)]
		if !ok {
			s = &Span{Kind: KindAttempt, Name: e.Task, Attempt: e.Attempt,
				Node: e.Node, Locality: e.Locality, Backup: e.Backup,
				StartUs: ts - e.Dur.Microseconds()}
			a.attempts[attemptKey(e)] = s
			p := a.phase(e.Job, e.Phase, ts)
			p.Children = append(p.Children, s)
		}
		s.EndUs = ts
		if e.Locality != "" {
			s.Locality = e.Locality
		}
		s.Backup = s.Backup || e.Backup
		switch e.Type {
		case obs.AttemptSucceeded:
			s.Status = StatusSucceeded
		case obs.AttemptFailed:
			s.Status = StatusFailed
			s.Error = e.Err
		case obs.AttemptKilled:
			s.Status = StatusKilled
		}
	case obs.RPCRoundTrip, obs.WorkerTaskDone:
		// Sub-attempt detail from the out-of-process backend. Both carry
		// Dur and an end timestamp, so the child span is [ts−Dur, ts];
		// WorkerTaskDone timestamps were clock-corrected at the
		// jobtracker before reaching the bus. The attempt span is
		// synthesised if these arrive before any attempt event (the
		// worker reports before the driver marks the attempt terminal,
		// but after AttemptStarted, so in practice it exists).
		if e.Job == "" {
			return
		}
		s, ok := a.attempts[attemptKey(e)]
		if !ok {
			s = &Span{Kind: KindAttempt, Name: e.Task, Attempt: e.Attempt,
				Node: e.Node, Status: StatusRunning,
				StartUs: ts - e.Dur.Microseconds(), EndUs: ts}
			a.attempts[attemptKey(e)] = s
			p := a.phase(e.Job, e.Phase, ts)
			p.Children = append(p.Children, s)
		}
		kind := KindRPC
		if e.Type == obs.WorkerTaskDone {
			kind = KindExec
		}
		status := StatusSucceeded
		if e.Err != "" {
			status = StatusFailed
		}
		s.Children = append(s.Children, &Span{
			Kind: kind, Name: e.Task, Attempt: e.Attempt, Node: e.Node,
			Status: status, Error: e.Err,
			StartUs: ts - e.Dur.Microseconds(), EndUs: ts,
		})
	}
}

// job returns the job span, synthesising one for phase/attempt events
// of a job whose JobSubmitted fell outside the stream.
func (a *assembler) job(name string, ts int64) *Span {
	if j, ok := a.jobs[name]; ok {
		return j
	}
	j := &Span{Kind: KindJob, Name: name, Status: StatusRunning, StartUs: ts, EndUs: ts}
	a.jobs[name] = j
	a.parents[j] = ""
	a.order = append(a.order, j)
	return j
}

// phase returns the open phase span, synthesising one if its
// PhaseStart fell outside the stream.
func (a *assembler) phase(jobName, phase string, ts int64) *Span {
	key := jobName + "\x00" + phase
	if p, ok := a.phases[key]; ok {
		return p
	}
	j := a.job(jobName, ts)
	p := &Span{Kind: KindPhase, Name: phase, Status: StatusRunning, StartUs: ts, EndUs: ts}
	a.phases[key] = p
	j.Children = append(j.Children, p)
	return p
}

// finish links children to parents, closes open spans at the latest
// time seen beneath them, sorts children and returns the roots.
func (a *assembler) finish() []*Tree {
	var roots []*Span
	for _, s := range a.order {
		parent := a.parents[s]
		if p, ok := a.spans[parent]; ok && parent != "" && p != s {
			p.Children = append(p.Children, s)
		} else {
			roots = append(roots, s)
		}
	}
	var trees []*Tree
	for _, r := range roots {
		closeOpen(r)
		sortSpans(r)
		// Re-anchor the tree on its own root so offsets start at zero.
		base := r.StartUs
		r.Walk(func(s *Span) {
			s.StartUs -= base
			s.EndUs -= base
		})
		trees = append(trees, &Tree{
			StartUnixMs: a.anchor.Add(time.Duration(base) * time.Microsecond).UnixMilli(),
			Root:        r,
		})
	}
	return trees
}

// closeOpen extends still-running spans to cover their subtree: a span
// cut mid-flight ends at the last event time observed beneath it.
func closeOpen(s *Span) int64 {
	end := s.EndUs
	for _, c := range s.Children {
		if ce := closeOpen(c); ce > end {
			end = ce
		}
	}
	if s.Status == StatusRunning || s.Status == "" {
		s.EndUs = end
	}
	return s.EndUs
}

func sortSpans(s *Span) {
	sort.SliceStable(s.Children, func(i, j int) bool {
		if s.Children[i].StartUs != s.Children[j].StartUs {
			return s.Children[i].StartUs < s.Children[j].StartUs
		}
		return s.Children[i].Name < s.Children[j].Name
	})
	for _, c := range s.Children {
		sortSpans(c)
	}
}
