package trace

import (
	"sync"

	"repro/internal/obs"
)

// Collector is an obs.Sink that groups the live event stream by root
// (an outermost pipeline span, or a standalone job) and finalises each
// group into a Tree when its root closes. Finished trees are kept in a
// bounded in-memory ring and, when a Store is attached, persisted
// alongside the job history so `gepeto analyze` works post-mortem.
//
// Events that arrive after their root closed — the engine emits
// AttemptKilled for abandoned speculative losers after JobFinished —
// no longer resolve to a group and are dropped, so closed roots leak
// nothing.
type Collector struct {
	mu       sync.Mutex
	store    *Store
	maxKept  int
	groups   map[string][]obs.Event
	spanRoot map[string]string // span ID → root key
	jobRoot  map[string]string // job name → root key
	finished []*Tree
	seq      int
}

// jobRootPrefix keys roots that are standalone jobs rather than spans.
const jobRootPrefix = "job\x00"

// NewCollector creates a collector keeping the most recent maxKept
// finished trees in memory (default 32 when <= 0). store may be nil.
func NewCollector(store *Store, maxKept int) *Collector {
	if maxKept <= 0 {
		maxKept = 32
	}
	return &Collector{
		store:    store,
		maxKept:  maxKept,
		groups:   make(map[string][]obs.Event),
		spanRoot: make(map[string]string),
		jobRoot:  make(map[string]string),
	}
}

// Emit implements obs.Sink.
func (c *Collector) Emit(e obs.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var root string
	switch e.Type {
	case obs.SpanStart:
		if r, ok := c.spanRoot[e.Parent]; ok && e.Parent != "" {
			root = r
		} else {
			root = e.Span
		}
		c.spanRoot[e.Span] = root
	case obs.SpanEnd:
		r, ok := c.spanRoot[e.Span]
		if !ok {
			return // late event for a closed root
		}
		root = r
	case obs.JobSubmitted:
		if r, ok := c.spanRoot[e.Parent]; ok && e.Parent != "" {
			root = r
		} else {
			root = jobRootPrefix + e.Job
		}
		c.jobRoot[e.Job] = root
	default:
		r, ok := c.jobRoot[e.Job]
		if !ok {
			return // late event for a closed root
		}
		root = r
	}
	c.groups[root] = append(c.groups[root], e)
	if (e.Type == obs.SpanEnd && e.Span == root) ||
		(e.Type == obs.JobFinished && root == jobRootPrefix+e.Job) {
		c.finalizeLocked(root)
	}
}

// finalizeLocked assembles the group into trees, persists them, and
// releases every identity mapping pointing at the root.
func (c *Collector) finalizeLocked(root string) {
	events := c.groups[root]
	delete(c.groups, root)
	for id, r := range c.spanRoot {
		if r == root {
			delete(c.spanRoot, id)
		}
	}
	for job, r := range c.jobRoot {
		if r == root {
			delete(c.jobRoot, job)
		}
	}
	for _, t := range Assemble(events) {
		c.seq++
		t.Seq = c.seq
		if c.store != nil {
			if _, err := c.store.Save(t); err == nil {
				// Store.Save assigned the persistent sequence number.
			}
		}
		c.finished = append(c.finished, t)
		if len(c.finished) > c.maxKept {
			c.finished = c.finished[len(c.finished)-c.maxKept:]
		}
	}
}

// Finished returns the in-memory finished trees, oldest first.
func (c *Collector) Finished() []*Tree {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Tree(nil), c.finished...)
}

// Find returns the most recent finished tree whose root name matches
// key, that contains a job named key, or whose sequence number equals
// the numeric form of key.
func (c *Collector) Find(key string) (*Tree, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return findIn(c.finished, key)
}
