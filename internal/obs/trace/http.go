package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// Source finds trees by key. *Collector and *Store both implement it;
// Multi chains them so the status server consults live traces first
// and the persistent store second.
type Source interface {
	Find(key string) (*Tree, bool)
}

// Multi returns a Source consulting each non-nil source in order.
func Multi(srcs ...Source) Source { return multiSource(srcs) }

type multiSource []Source

func (m multiSource) Find(key string) (*Tree, bool) {
	for _, s := range m {
		if s == nil {
			continue
		}
		if t, ok := s.Find(key); ok {
			return t, true
		}
	}
	return nil, false
}

// TraceHandler serves assembled trees under prefix (e.g. "/trace/"):
// the span tree as JSON by default, or Chrome trace_event JSON with
// ?format=chrome — ready to load into Perfetto or chrome://tracing.
func TraceHandler(prefix string, src Source) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, prefix)
		if key == "" {
			http.Error(w, "usage: "+prefix+"<jobID|pipeline|seq>[?format=chrome]", http.StatusBadRequest)
			return
		}
		t, ok := src.Find(key)
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Query().Get("format") == "chrome" {
			data, err := EncodeChrome(t)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			_, _ = w.Write(data)
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t)
	})
}

// AnalyzeHandler serves the bottleneck analysis under prefix (e.g.
// "/analyze/"): JSON by default, the ASCII report with ?format=text.
// ?slow= and ?skew= override the straggler and skew factors.
func AnalyzeHandler(prefix string, src Source, opts Options) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, prefix)
		if key == "" {
			http.Error(w, "usage: "+prefix+"<jobID|pipeline|seq>[?format=text&slow=1.5&skew=2]", http.StatusBadRequest)
			return
		}
		t, ok := src.Find(key)
		if !ok {
			http.NotFound(w, r)
			return
		}
		o := opts
		if f, err := strconv.ParseFloat(r.URL.Query().Get("slow"), 64); err == nil {
			o.StragglerFactor = f
		}
		if f, err := strconv.ParseFloat(r.URL.Query().Get("skew"), 64); err == nil {
			o.SkewFactor = f
		}
		a := AnalyzeTree(t, o)
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			WriteReport(w, t, a)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(a)
	})
}
