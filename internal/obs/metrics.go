package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric backed by an atomic.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (negative deltas are ignored —
// counters only go up).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, backed by an atomic.
// The runtime sampler uses gauges for heap size, goroutine count and
// GC state.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (either direction).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default histogram bucket upper bounds, in seconds
// (matching the Prometheus client default ladder).
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram counts observations into cumulative-style buckets and
// tracks their sum, rendering in Prometheus histogram form.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; +Inf implicit
	counts []uint64  // len(bounds)+1, last is the +Inf bucket
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts, sum and count.
func (h *Histogram) snapshot() (cum []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.counts))
	var running uint64
	for i, c := range h.counts {
		running += c
		cum[i] = running
	}
	return cum, h.sum, h.count
}

// Labels are metric dimensions, e.g. {"phase": "map"}.
type Labels map[string]string

// series is one (name, labels) time series.
type series struct {
	labels  Labels
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family groups all series of one metric name.
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	series map[string]*series
	order  []string
}

// Registry holds counters and histograms and renders them as
// Prometheus text format or a JSON-friendly snapshot. All methods are
// safe for concurrent use; instrument lookups are cheap enough for
// per-task (not per-record) call sites.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) familyLocked(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	return f
}

// labelKey serialises labels deterministically.
func labelKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, labels[k])
	}
	return sb.String()
}

// Counter returns the counter for name+labels, registering it on first
// use. help is only recorded the first time a name is seen.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "counter")
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: cloneLabels(labels), counter: &Counter{}}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s.counter
}

// Gauge returns the gauge for name+labels, registering it on first
// use. help is only recorded the first time a name is seen.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "gauge")
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: cloneLabels(labels), gauge: &Gauge{}}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s.gauge
}

// Histogram returns the histogram for name+labels, registering it with
// the given bucket bounds on first use (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "histogram")
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		if buckets == nil {
			buckets = DefBuckets
		}
		h := &Histogram{
			bounds: append([]float64(nil), buckets...),
			counts: make([]uint64, len(buckets)+1),
		}
		s = &series{labels: cloneLabels(labels), hist: h}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s.hist
}

func cloneLabels(l Labels) Labels {
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// promLabels renders `{k="v",...}` (empty string for no labels),
// optionally appending an extra le label for histogram buckets.
func promLabels(labels Labels, le string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if le != "" {
		keys = append(keys, "le")
	}
	if len(keys) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		v := labels[k]
		if k == "le" && le != "" {
			v = le
		}
		fmt.Fprintf(&sb, "%s=%q", k, v)
	}
	sb.WriteByte('}')
	return sb.String()
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format, deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) {
	// Hold the lock across the whole walk: instrument lookups mutate
	// f.series/f.order concurrently, and the per-series value reads are
	// atomic so nothing below blocks on another lock.
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		for _, key := range keys {
			s := f.series[key]
			switch {
			case s.counter != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(s.labels, ""), s.counter.Value())
			case s.gauge != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(s.labels, ""), s.gauge.Value())
			case s.hist != nil:
				cum, sum, count := s.hist.snapshot()
				for i, b := range s.hist.bounds {
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, promLabels(s.labels, formatBound(b)), cum[i])
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, promLabels(s.labels, "+Inf"), cum[len(cum)-1])
				fmt.Fprintf(w, "%s_sum%s %g\n", f.name, promLabels(s.labels, ""), sum)
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, promLabels(s.labels, ""), count)
			}
		}
	}
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", b)
}

// MetricPoint is one series in a JSON snapshot. It is also the wire
// unit of metrics federation: workers ship their whole registry as a
// []MetricPoint on each heartbeat and the jobtracker re-renders the
// merged set, so a point must carry everything needed to reproduce the
// Prometheus exposition (including histogram buckets).
type MetricPoint struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value,omitempty"`
	// FValue carries non-integer gauge values (heartbeat ages, clock
	// offsets in seconds) for points synthesized outside a Registry;
	// rendering prefers it over Value when non-zero.
	FValue  float64       `json:"fvalue,omitempty"`
	Count   uint64        `json:"count,omitempty"`
	Sum     float64       `json:"sum,omitempty"`
	Buckets []BucketPoint `json:"buckets,omitempty"`
}

// BucketPoint is one cumulative histogram bucket in a MetricPoint.
type BucketPoint struct {
	// Le is the bucket's inclusive upper bound; +Inf for the last.
	Le float64 `json:"-"`
	// Cum is the cumulative observation count at this bound.
	Cum uint64 `json:"cum"`
}

// bucketPointJSON carries Le as a string ("+Inf" for the last bucket),
// because JSON has no infinity literal.
type bucketPointJSON struct {
	Le  string `json:"le"`
	Cum uint64 `json:"cum"`
}

// MarshalJSON implements json.Marshaler.
func (b BucketPoint) MarshalJSON() ([]byte, error) {
	return json.Marshal(bucketPointJSON{Le: formatBound(b.Le), Cum: b.Cum})
}

// UnmarshalJSON implements json.Unmarshaler.
func (b *BucketPoint) UnmarshalJSON(data []byte) error {
	var aux bucketPointJSON
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	if aux.Le == "+Inf" {
		b.Le = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(aux.Le, 64)
		if err != nil {
			return fmt.Errorf("obs: bucket bound %q: %v", aux.Le, err)
		}
		b.Le = v
	}
	b.Cum = aux.Cum
	return nil
}

// Snapshot returns every series as a flat, deterministic list for JSON
// serialization.
func (r *Registry) Snapshot() []MetricPoint {
	// Locked for the whole walk, same as WritePrometheus: the family
	// maps grow under concurrent instrument registration.
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var out []MetricPoint
	for _, f := range fams {
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		for _, key := range keys {
			s := f.series[key]
			p := MetricPoint{Name: f.name, Type: f.typ, Labels: s.labels}
			switch {
			case s.counter != nil:
				p.Value = s.counter.Value()
			case s.gauge != nil:
				p.Value = s.gauge.Value()
			case s.hist != nil:
				cum, sum, count := s.hist.snapshot()
				p.Count, p.Sum = count, sum
				p.Buckets = make([]BucketPoint, 0, len(cum))
				for i, b := range s.hist.bounds {
					p.Buckets = append(p.Buckets, BucketPoint{Le: b, Cum: cum[i]})
				}
				p.Buckets = append(p.Buckets, BucketPoint{Le: math.Inf(1), Cum: cum[len(cum)-1]})
			}
			out = append(out, p)
		}
	}
	return out
}

// WriteMetricPoints renders an already-snapshotted point list in the
// Prometheus text exposition format. It is the federation renderer:
// the jobtracker merges its own registry snapshot, synthesized cluster
// points and every worker's federated snapshot into one list, and this
// writes them as one exposition where same-named families from
// different sources (distinguished by a worker label) share a single
// TYPE block. Points are sorted by name then label set; HELP lines are
// omitted because a merged list has no single authoritative source.
func WriteMetricPoints(w io.Writer, points []MetricPoint) {
	sorted := append([]MetricPoint(nil), points...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Name != sorted[j].Name {
			return sorted[i].Name < sorted[j].Name
		}
		return labelKey(sorted[i].Labels) < labelKey(sorted[j].Labels)
	})
	prev := ""
	for _, p := range sorted {
		if p.Name != prev {
			typ := p.Type
			if typ == "" {
				typ = "untyped"
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", p.Name, typ)
			prev = p.Name
		}
		switch p.Type {
		case "histogram":
			for _, b := range p.Buckets {
				fmt.Fprintf(w, "%s_bucket%s %d\n", p.Name, promLabels(p.Labels, formatBound(b.Le)), b.Cum)
			}
			fmt.Fprintf(w, "%s_sum%s %g\n", p.Name, promLabels(p.Labels, ""), p.Sum)
			fmt.Fprintf(w, "%s_count%s %d\n", p.Name, promLabels(p.Labels, ""), p.Count)
		default:
			if p.FValue != 0 {
				fmt.Fprintf(w, "%s%s %g\n", p.Name, promLabels(p.Labels, ""), p.FValue)
			} else {
				fmt.Fprintf(w, "%s%s %d\n", p.Name, promLabels(p.Labels, ""), p.Value)
			}
		}
	}
}

// MetricsSink subscribes a Registry to the event bus, deriving the
// engine's core metrics from lifecycle events: task durations and
// status counts per phase, attempts-per-task, locality mix, shuffle
// bytes, speculative kills, and job durations.
type MetricsSink struct {
	reg *Registry
}

// NewMetricsSink wires a registry to be fed from bus events.
func NewMetricsSink(reg *Registry) *MetricsSink {
	return &MetricsSink{reg: reg}
}

// Registry returns the underlying registry.
func (m *MetricsSink) Registry() *Registry { return m.reg }

// attemptBuckets ladder 1..8 attempts per task.
var attemptBuckets = []float64{1, 2, 3, 4, 5, 8}

// Emit implements Sink.
func (m *MetricsSink) Emit(e Event) {
	switch e.Type {
	case JobSubmitted:
		m.reg.Counter("mr_jobs_submitted_total", "MapReduce jobs submitted to the engine.", nil).Inc()
	case JobFinished:
		status := "succeeded"
		if e.Err != "" {
			status = "failed"
		}
		m.reg.Counter("mr_jobs_finished_total", "MapReduce jobs finished, by status.", Labels{"status": status}).Inc()
		m.reg.Histogram("mr_job_duration_seconds", "Wall time of finished jobs.", nil, nil).Observe(e.Dur.Seconds())
	case PhaseEnd:
		m.reg.Histogram("mr_phase_duration_seconds", "Wall time per job phase.", nil, Labels{"phase": e.Phase}).Observe(e.Dur.Seconds())
		if e.Phase == "shuffle" && e.Value > 0 {
			m.reg.Counter("mr_shuffle_bytes_total", "Intermediate bytes moved by the shuffle.", nil).Add(e.Value)
		}
		// Per-partition shuffle distribution, the skew signal: a hot
		// reduce key shows up as one partition label dominating both.
		for _, p := range e.Parts {
			part := Labels{"partition": strconv.Itoa(p.Part)}
			m.reg.Counter("shuffle_partition_records", "Records merged into each reduce partition.", part).Add(p.Records)
			m.reg.Counter("shuffle_partition_bytes", "Bytes merged into each reduce partition.", part).Add(p.Bytes)
		}
	case TaskScheduled:
		m.reg.Counter("mr_task_attempts_scheduled_total", "Task attempts assigned to node slots.", Labels{"phase": e.Phase}).Inc()
	case AttemptSucceeded:
		m.reg.Counter("mr_task_attempts_total", "Terminal task attempts, by phase and status.", Labels{"phase": e.Phase, "status": "succeeded"}).Inc()
		m.reg.Histogram("mr_task_duration_seconds", "Run time of winning task attempts.", nil, Labels{"phase": e.Phase}).Observe(e.Dur.Seconds())
		m.reg.Histogram("mr_attempts_per_task", "Attempts used per completed task.", attemptBuckets, nil).Observe(float64(e.Attempt + 1))
		if e.Locality != "" {
			m.reg.Counter("mr_task_locality_total", "Winning map attempts by data locality.", Labels{"locality": e.Locality}).Inc()
		}
	case AttemptFailed:
		m.reg.Counter("mr_task_attempts_total", "Terminal task attempts, by phase and status.", Labels{"phase": e.Phase, "status": "failed"}).Inc()
	case AttemptKilled:
		m.reg.Counter("mr_task_attempts_total", "Terminal task attempts, by phase and status.", Labels{"phase": e.Phase, "status": "killed"}).Inc()
		m.reg.Counter("mr_speculative_killed_total", "Speculative attempts abandoned after losing the race.", nil).Inc()
	case WorkerJoined:
		m.reg.Counter("cluster_workers_joined_total", "Out-of-process workers registered at the jobtracker.", nil).Inc()
	case WorkerLost:
		m.reg.Counter("cluster_workers_lost_total", "Workers declared lost by the jobtracker, by reason.", Labels{"reason": e.Err}).Inc()
	case WorkerTaskDone:
		status := "succeeded"
		if e.Err != "" {
			status = "failed"
		}
		m.reg.Counter("cluster_worker_tasks_total", "Task attempts executed on remote workers, by worker and status.", Labels{"worker": e.Node, "status": status}).Inc()
	case RPCRoundTrip:
		m.reg.Histogram("rpc_attempt_roundtrip_seconds", "Driver-observed assign→complete round trip of remote task attempts.", nil, nil).Observe(e.Dur.Seconds())
	}
}
