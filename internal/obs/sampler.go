package obs

import (
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// StartRuntimeSampler samples Go runtime health — heap, goroutines,
// GC — into registry gauges on a ticker, so phase timings and traces
// can be correlated with memory pressure (the shuffle holding every
// partition in memory shows up as a go_heap_alloc_bytes ramp between a
// map PhaseEnd and the matching reduce PhaseStart).
//
// It samples once immediately, then every interval (minimum 100ms,
// default 1s when interval <= 0). The returned stop function halts the
// sampler and waits for its goroutine to exit; it is idempotent.
func StartRuntimeSampler(reg *Registry, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	goroutines := reg.Gauge("go_goroutines", "Live goroutines.", nil)
	heapAlloc := reg.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects.", nil)
	heapSys := reg.Gauge("go_heap_sys_bytes", "Heap memory obtained from the OS.", nil)
	nextGC := reg.Gauge("go_next_gc_bytes", "Heap size target of the next GC cycle.", nil)
	gcRuns := reg.Gauge("go_gc_runs_total", "Completed GC cycles.", nil)
	gcPause := reg.Gauge("go_gc_pause_total_ns", "Cumulative GC stop-the-world pause time.", nil)
	// Monotonic counters, so a scraper can derive rates between two
	// samples (allocation rate, CPU burn) instead of only seeing the
	// instantaneous heap shape.
	totalAlloc := reg.Gauge("go_total_alloc_bytes", "Cumulative bytes allocated on the heap (monotonic).", nil)
	mallocs := reg.Gauge("go_mallocs_total", "Cumulative heap objects allocated (monotonic).", nil)
	cpuUser := reg.Gauge("go_cpu_user_ns", "Cumulative CPU time spent running user Go code (monotonic).", nil)

	cpuSample := []metrics.Sample{{Name: "/cpu/classes/user:cpu-seconds"}}

	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(int64(runtime.NumGoroutine()))
		heapAlloc.Set(int64(ms.HeapAlloc))
		heapSys.Set(int64(ms.HeapSys))
		nextGC.Set(int64(ms.NextGC))
		gcRuns.Set(int64(ms.NumGC))
		gcPause.Set(int64(ms.PauseTotalNs))
		totalAlloc.Set(int64(ms.TotalAlloc))
		mallocs.Set(int64(ms.Mallocs))
		metrics.Read(cpuSample)
		if cpuSample[0].Value.Kind() == metrics.KindFloat64 {
			cpuUser.Set(int64(cpuSample[0].Value.Float64() * 1e9))
		}
	}
	sample()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				sample()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
