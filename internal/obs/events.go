// Package obs is the observability layer of the MapReduce engine: a
// structured event bus carrying typed job/phase/task/attempt lifecycle
// events, a metrics registry with Prometheus text-format exposition, a
// job-history store persisting finished-job records (the Hadoop
// job-history server role), a live jobtracker-style status tracker and
// HTTP server, and an ASCII task-attempt timeline renderer.
//
// The paper's entire contribution is measured — per-job wall times,
// speedup curves and phase breakdowns on Grid'5000 (§V-§VII) — and the
// cluster deployments it ran on expose exactly this through the Hadoop
// jobtracker web UI and job-history server. This package provides the
// equivalent measurement substrate for the simulated stack.
//
// The package deliberately imports no other internal package so every
// layer (dfs, mapreduce, gepeto, core) can depend on it without
// cycles; storage backends are supplied through the small FS interface
// that *dfs.FileSystem satisfies structurally.
package obs

import (
	"sync"
	"time"
)

// EventType enumerates the lifecycle events the engine and the
// algorithm drivers emit.
type EventType string

// Event types. Jobs contain phases, phases contain tasks, tasks are
// executed by one or more attempts; spans group jobs into pipelines
// (a k-means run, DJ-Cluster's three phases, the R-tree build).
const (
	// JobSubmitted marks a job entering the engine.
	JobSubmitted EventType = "job_submitted"
	// JobFinished marks a job leaving the engine (Err set on failure).
	JobFinished EventType = "job_finished"
	// PhaseStart/PhaseEnd bracket the map, shuffle and reduce phases.
	PhaseStart EventType = "phase_start"
	PhaseEnd   EventType = "phase_end"
	// TaskScheduled marks a task attempt being assigned to a node slot.
	TaskScheduled EventType = "task_scheduled"
	// AttemptStarted marks a task attempt beginning execution.
	AttemptStarted EventType = "attempt_started"
	// AttemptSucceeded marks the winning attempt of a task.
	AttemptSucceeded EventType = "attempt_succeeded"
	// AttemptFailed marks a failed attempt (Err carries the reason).
	AttemptFailed EventType = "attempt_failed"
	// AttemptKilled marks a speculative attempt abandoned because a
	// parallel attempt of the same task won (Hadoop killing the slower
	// speculative attempt). Emitted exactly once per losing attempt.
	AttemptKilled EventType = "attempt_killed"
	// SpanStart/SpanEnd bracket driver-level pipeline spans (k-means
	// iterations, DJ-Cluster phases, R-tree build).
	SpanStart EventType = "span_start"
	SpanEnd   EventType = "span_end"
	// WorkerJoined/WorkerLost mark out-of-process worker membership at
	// the jobtracker (registration, and loss via kill or heartbeat
	// timeout — Err carries the loss reason). Node identifies the
	// worker's cluster node; Job is empty (membership outlives jobs).
	WorkerJoined EventType = "worker_joined"
	WorkerLost   EventType = "worker_lost"
	// WorkerTaskDone marks a task attempt finishing on a remote worker,
	// as reported by the worker's own event stream (Err set on failure).
	// Time is stamped by the worker's clock and Dur is the worker-side
	// execution time, so the jobtracker must clock-correct it before
	// trace assembly.
	WorkerTaskDone EventType = "worker_task_done"
	// RPCRoundTrip marks the driver-observed assign→complete round trip
	// of one remote task attempt: Time is when the completion report
	// arrived, Dur spans from the assignment RPC being sent. The gap
	// between this span and the worker-side WorkerTaskDone execution
	// time is the coordination overhead of the out-of-process backend.
	RPCRoundTrip EventType = "rpc_roundtrip"
)

// Event is one structured lifecycle event. The identity fields form a
// span hierarchy: Parent → Job → Phase → Task → Attempt, so a whole
// multi-job pipeline reconstructs as one tree.
type Event struct {
	// Type is the event kind.
	Type EventType
	// Time is the event timestamp. The bus stamps it with time.Now()
	// (monotonic-clock backed) if left zero.
	Time time.Time
	// Job names the owning job; empty for pure pipeline-span events.
	Job string
	// Parent is the enclosing span ID ("" for root jobs/spans).
	Parent string
	// Span is the span ID for SpanStart/SpanEnd events.
	Span string
	// Phase is "map", "shuffle" or "reduce" for phase/task events.
	Phase string
	// Task identifies the task ("map-0007") for attempt events.
	Task string
	// Attempt is the 0-based attempt number.
	Attempt int
	// Node is the executing cluster node.
	Node string
	// Locality is "data-local", "rack-local" or "off-rack" when known.
	Locality string
	// Backup marks speculative (backup) attempts.
	Backup bool
	// Dur carries a duration where meaningful (attempt run time on
	// terminal attempt events, phase wall on PhaseEnd, job wall on
	// JobFinished).
	Dur time.Duration
	// Value carries an event-specific magnitude (shuffle bytes on the
	// shuffle PhaseEnd).
	Value int64
	// Err is the failure reason for AttemptFailed / failed JobFinished.
	Err string
	// Detail is free-form context ("maps=12 reducers=4").
	Detail string
	// Parts is the per-reduce-partition shuffle summary, set on the
	// shuffle PhaseEnd event. It is the raw material for skew analysis:
	// the DJ-Cluster merge funnelling everything into one reducer shows
	// up here as one partition holding all the records.
	Parts []PartStat
}

// PartStat summarises one reduce partition's share of the shuffle: how
// many pre-sorted map-output runs were merged into it, the record and
// byte volume routed to it, and the merge wall time.
type PartStat struct {
	// Part is the 0-based reduce partition index.
	Part int `json:"part"`
	// Runs is the number of map-output runs merged.
	Runs int64 `json:"runs"`
	// Records and Bytes are the merged record count and byte volume.
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
	// DurUs is the partition's merge wall time in microseconds.
	DurUs int64 `json:"dur_us"`
}

// Sink consumes events. Implementations must be safe for concurrent
// Emit calls: the engine emits from many worker goroutines.
type Sink interface {
	Emit(Event)
}

// Bus fans events out to attached sinks. A nil *Bus is a valid,
// always-inactive bus: every method is a cheap no-op, which is the
// fast path the engine relies on when no observer is attached.
type Bus struct {
	mu    sync.RWMutex
	sinks []Sink
}

// NewBus creates a bus with the given sinks attached.
func NewBus(sinks ...Sink) *Bus {
	b := &Bus{}
	b.sinks = append(b.sinks, sinks...)
	return b
}

// Attach adds a sink to the bus.
func (b *Bus) Attach(s Sink) {
	if b == nil || s == nil {
		return
	}
	b.mu.Lock()
	b.sinks = append(b.sinks, s)
	b.mu.Unlock()
}

// Active reports whether any sink is attached. Hot paths use it to
// skip event construction entirely.
func (b *Bus) Active() bool {
	if b == nil {
		return false
	}
	b.mu.RLock()
	n := len(b.sinks)
	b.mu.RUnlock()
	return n > 0
}

// Emit delivers the event to every attached sink, stamping Time if
// unset. Safe on a nil bus.
func (b *Bus) Emit(e Event) {
	if b == nil {
		return
	}
	b.mu.RLock()
	sinks := b.sinks
	b.mu.RUnlock()
	if len(sinks) == 0 {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	for _, s := range sinks {
		s.Emit(e)
	}
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit implements Sink.
func (f SinkFunc) Emit(e Event) { f(e) }

// Recorder is a Sink that buffers every event, for tests and ad-hoc
// tracing. Safe for concurrent use.
//
// Long-lived processes set MaxJobs to bound the buffer: once more than
// MaxJobs jobs have finished, the oldest finished job's events are
// dropped. Events of jobs that are still running — and events carrying
// no job at all (pipeline spans) — are never pruned, so an in-flight
// job's trace stays complete no matter how many jobs finish around it.
type Recorder struct {
	// MaxJobs, when > 0, bounds retention to the events of the most
	// recent MaxJobs finished jobs (plus everything still running).
	MaxJobs int

	mu       sync.Mutex
	events   []Event
	finished []string // finished job names, oldest first
}

// Emit implements Sink.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	if r.MaxJobs > 0 && e.Type == JobFinished && e.Job != "" {
		r.finished = append(r.finished, e.Job)
		for len(r.finished) > r.MaxJobs {
			r.evictLocked(r.finished[0])
			r.finished = r.finished[1:]
		}
	}
	r.mu.Unlock()
}

// evictLocked drops every buffered event of one finished job.
func (r *Recorder) evictLocked(job string) {
	kept := r.events[:0]
	for _, e := range r.events {
		if e.Job != job {
			kept = append(kept, e)
		}
	}
	r.events = kept
}

// Events returns a copy of everything recorded so far.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// ByType returns the recorded events of one type, in arrival order.
func (r *Recorder) ByType(t EventType) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}
