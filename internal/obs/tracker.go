package obs

import (
	"sort"
	"sync"
	"time"
)

// PhaseState is the live view of one job phase.
type PhaseState struct {
	Name    string        `json:"name"`
	Started time.Time     `json:"started"`
	Ended   time.Time     `json:"ended"`
	Wall    time.Duration `json:"wall_ns"`
	Done    bool          `json:"done"`
}

// AttemptState is the live view of one task attempt.
type AttemptState struct {
	Task     string    `json:"task"`
	Phase    string    `json:"phase"`
	Attempt  int       `json:"attempt"`
	Node     string    `json:"node"`
	Started  time.Time `json:"started"`
	Ended    time.Time `json:"ended"`
	Locality string    `json:"locality,omitempty"`
	Backup   bool      `json:"backup,omitempty"`
	// Status is "running", "succeeded", "failed" or "killed".
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// JobState is the live jobtracker view of one job or pipeline span.
type JobState struct {
	// Name is the job name (or span ID for pipeline spans).
	Name string `json:"name"`
	// Kind is "job" or "span".
	Kind string `json:"kind"`
	// Parent is the enclosing span ID, if any.
	Parent    string    `json:"parent,omitempty"`
	Submitted time.Time `json:"submitted"`
	Finished  time.Time `json:"finished"`
	// State is "running", "succeeded" or "failed".
	State  string       `json:"state"`
	Error  string       `json:"error,omitempty"`
	Detail string       `json:"detail,omitempty"`
	Phases []PhaseState `json:"phases,omitempty"`
	// Attempts counts are summarized; the full attempt list is served
	// on the per-job endpoint.
	RunningAttempts  int `json:"running_attempts"`
	FinishedAttempts int `json:"finished_attempts"`

	attempts []AttemptState
}

// Tracker is a Sink maintaining live job state from lifecycle events —
// the data behind the jobtracker status pages.
type Tracker struct {
	mu    sync.Mutex
	jobs  map[string]*JobState
	order []string
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{jobs: make(map[string]*JobState)}
}

func (t *Tracker) stateLocked(name, kind string) *JobState {
	js, ok := t.jobs[name]
	if !ok {
		js = &JobState{Name: name, Kind: kind, State: "running"}
		t.jobs[name] = js
		t.order = append(t.order, name)
	}
	return js
}

// Emit implements Sink.
func (t *Tracker) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch e.Type {
	case SpanStart:
		js := t.stateLocked(e.Span, "span")
		js.Parent = e.Parent
		js.Submitted = e.Time
		js.Detail = e.Detail
	case SpanEnd:
		js := t.stateLocked(e.Span, "span")
		js.Finished = e.Time
		js.State = "succeeded"
		if e.Err != "" {
			js.State, js.Error = "failed", e.Err
		}
	case JobSubmitted:
		js := t.stateLocked(e.Job, "job")
		js.Parent = e.Parent
		js.Submitted = e.Time
		js.Detail = e.Detail
	case JobFinished:
		js := t.stateLocked(e.Job, "job")
		js.Finished = e.Time
		js.State = "succeeded"
		if e.Err != "" {
			js.State, js.Error = "failed", e.Err
		}
	case PhaseStart:
		js := t.stateLocked(e.Job, "job")
		js.Phases = append(js.Phases, PhaseState{Name: e.Phase, Started: e.Time})
	case PhaseEnd:
		js := t.stateLocked(e.Job, "job")
		for i := len(js.Phases) - 1; i >= 0; i-- {
			if js.Phases[i].Name == e.Phase && !js.Phases[i].Done {
				js.Phases[i].Ended = e.Time
				js.Phases[i].Wall = e.Dur
				js.Phases[i].Done = true
				break
			}
		}
	case AttemptStarted:
		js := t.stateLocked(e.Job, "job")
		js.attempts = append(js.attempts, AttemptState{
			Task: e.Task, Phase: e.Phase, Attempt: e.Attempt, Node: e.Node,
			Started: e.Time, Locality: e.Locality, Backup: e.Backup, Status: "running",
		})
		js.RunningAttempts++
	case AttemptSucceeded, AttemptFailed, AttemptKilled:
		js := t.stateLocked(e.Job, "job")
		status := map[EventType]string{
			AttemptSucceeded: "succeeded",
			AttemptFailed:    "failed",
			AttemptKilled:    "killed",
		}[e.Type]
		for i := len(js.attempts) - 1; i >= 0; i-- {
			a := &js.attempts[i]
			if a.Task == e.Task && a.Attempt == e.Attempt && a.Node == e.Node && a.Status == "running" {
				a.Status = status
				a.Ended = e.Time
				a.Error = e.Err
				if e.Locality != "" {
					a.Locality = e.Locality
				}
				js.RunningAttempts--
				js.FinishedAttempts++
				break
			}
		}
	}
}

// Jobs returns a snapshot of every tracked job and span, in first-seen
// order (submission order).
func (t *Tracker) Jobs() []JobState {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]JobState, 0, len(t.order))
	for _, name := range t.order {
		js := *t.jobs[name]
		js.Phases = append([]PhaseState(nil), js.Phases...)
		js.attempts = nil
		out = append(out, js)
	}
	return out
}

// Job returns the detailed state of one job, including its attempts.
func (t *Tracker) Job(name string) (JobState, []AttemptState, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	js, ok := t.jobs[name]
	if !ok {
		return JobState{}, nil, false
	}
	cp := *js
	cp.Phases = append([]PhaseState(nil), js.Phases...)
	attempts := append([]AttemptState(nil), js.attempts...)
	cp.attempts = nil
	sort.SliceStable(attempts, func(i, j int) bool { return attempts[i].Started.Before(attempts[j].Started) })
	return cp, attempts, true
}
