package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RenderTimeline draws a per-node swimlane of every task attempt in a
// job record, making stragglers, retries and speculative execution
// visible at a glance:
//
//	job sampling — 2 map / 0 reduce tasks, wall 12ms
//	time: 0ms ........................................ 12ms
//	node-1 | [==map-0000==========]
//	node-1 |          [~~map-0001~~]
//	node-2 |    [==map-0001=====]
//	legend: = succeeded   x failed   ~ speculative loser (killed)
//
// Each node gets one or more lanes; attempts that overlap in time on
// the same node stack onto extra lanes. width is the number of columns
// for the time axis (minimum 20; 0 picks a default of 72).
func RenderTimeline(rec JobRecord, width int) string {
	if width <= 0 {
		width = 72
	}
	if width < 20 {
		width = 20
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "job %s — %d map / %d reduce tasks, wall %v\n",
		rec.Job, rec.MapTasks, rec.ReduceTasks, time.Duration(rec.WallMs)*time.Millisecond)
	if len(rec.Attempts) == 0 {
		sb.WriteString("(no attempt records)\n")
		return sb.String()
	}

	// Time scale: job submission (0) to the last attempt end.
	var tmax int64 = 1
	for _, a := range rec.Attempts {
		if a.EndMs > tmax {
			tmax = a.EndMs
		}
	}
	col := func(ms int64) int {
		c := int(ms * int64(width-1) / tmax)
		if c < 0 {
			c = 0
		}
		if c > width-1 {
			c = width - 1
		}
		return c
	}

	// Group attempts by node, then stack overlapping ones into lanes.
	byNode := make(map[string][]AttemptRecord)
	var nodes []string
	for _, a := range rec.Attempts {
		if _, ok := byNode[a.Node]; !ok {
			nodes = append(nodes, a.Node)
		}
		byNode[a.Node] = append(byNode[a.Node], a)
	}
	sort.Strings(nodes)
	nodeW := 0
	for _, n := range nodes {
		if len(n) > nodeW {
			nodeW = len(n)
		}
	}

	fmt.Fprintf(&sb, "time: 0ms %s %dms\n", strings.Repeat(".", max(0, width-len(fmt.Sprintf("0ms  %dms", tmax)))), tmax)
	for _, node := range nodes {
		attempts := byNode[node]
		sort.SliceStable(attempts, func(i, j int) bool { return attempts[i].StartMs < attempts[j].StartMs })
		// Greedy lane assignment by end time.
		var laneEnds []int64
		lanes := make(map[int][]AttemptRecord)
		for _, a := range attempts {
			placed := -1
			for li, end := range laneEnds {
				if a.StartMs >= end {
					placed = li
					break
				}
			}
			if placed < 0 {
				placed = len(laneEnds)
				laneEnds = append(laneEnds, 0)
			}
			laneEnds[placed] = a.EndMs
			lanes[placed] = append(lanes[placed], a)
		}
		for li := 0; li < len(laneEnds); li++ {
			row := []byte(strings.Repeat(" ", width))
			for _, a := range lanes[li] {
				drawBar(row, col(a.StartMs), col(a.EndMs), a)
			}
			fmt.Fprintf(&sb, "%-*s | %s\n", nodeW, node, strings.TrimRight(string(row), " "))
		}
	}
	sb.WriteString("legend: = succeeded   x failed   ~ speculative loser (killed)   [label] = task-attempt\n")
	return sb.String()
}

// drawBar paints one attempt as "[==map-0003/0==]" between the given
// columns, degrading gracefully when the bar is too narrow for its
// label or brackets.
func drawBar(row []byte, lo, hi int, a AttemptRecord) {
	fill := byte('=')
	switch a.Status {
	case "failed":
		fill = 'x'
	case "killed":
		fill = '~'
	}
	if hi <= lo {
		hi = lo + 1
	}
	if hi > len(row) {
		hi = len(row)
	}
	for i := lo; i < hi; i++ {
		row[i] = fill
	}
	if hi-lo >= 2 {
		row[lo] = '['
		row[hi-1] = ']'
	}
	label := fmt.Sprintf("%s/%d", a.Task, a.Attempt)
	if inner := hi - lo - 2; inner >= len(label) {
		copy(row[lo+1+(inner-len(label))/2:], label)
	}
}
