package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilBusIsSafe(t *testing.T) {
	var b *Bus
	if b.Active() {
		t.Fatal("nil bus reports active")
	}
	b.Attach(&Recorder{}) // must not panic
	b.Emit(Event{Type: JobSubmitted, Job: "x"})
}

func TestBusFansOutAndStampsTime(t *testing.T) {
	r1, r2 := &Recorder{}, &Recorder{}
	b := NewBus(r1)
	b.Attach(r2)
	if !b.Active() {
		t.Fatal("bus with sinks reports inactive")
	}
	b.Emit(Event{Type: JobSubmitted, Job: "j"})
	for i, r := range []*Recorder{r1, r2} {
		evs := r.Events()
		if len(evs) != 1 {
			t.Fatalf("sink %d got %d events", i, len(evs))
		}
		if evs[0].Time.IsZero() {
			t.Errorf("sink %d: bus did not stamp Time", i)
		}
	}
	// An explicitly set Time must be preserved.
	at := time.Unix(100, 0)
	b.Emit(Event{Type: JobFinished, Job: "j", Time: at})
	if got := r1.ByType(JobFinished)[0].Time; !got.Equal(at) {
		t.Errorf("Time = %v, want %v", got, at)
	}
}

func TestEmptyBusSkipsWork(t *testing.T) {
	b := NewBus()
	if b.Active() {
		t.Fatal("empty bus reports active")
	}
	b.Emit(Event{Type: JobSubmitted}) // no sinks: no-op
}

func TestRegistryPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs_total", "Jobs.", nil).Inc()
	reg.Counter("tasks_total", "Tasks by phase.", Labels{"phase": "map"}).Add(3)
	reg.Counter("tasks_total", "Tasks by phase.", Labels{"phase": "reduce"}).Inc()
	h := reg.Histogram("dur_seconds", "Durations.", []float64{0.1, 1}, nil)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs.",
		"# TYPE jobs_total counter",
		"jobs_total 1",
		`tasks_total{phase="map"} 3`,
		`tasks_total{phase="reduce"} 1`,
		"# TYPE dur_seconds histogram",
		`dur_seconds_bucket{le="0.1"} 1`,
		`dur_seconds_bucket{le="1"} 2`,
		`dur_seconds_bucket{le="+Inf"} 3`,
		"dur_seconds_sum 5.55",
		"dur_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Counters never go down.
	c := reg.Counter("jobs_total", "", nil)
	c.Add(-5)
	if c.Value() != 1 {
		t.Errorf("negative Add changed counter: %d", c.Value())
	}
	// Same name+labels returns the same series.
	if reg.Counter("jobs_total", "", nil) != c {
		t.Error("registry returned a different counter for same name")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "", Labels{"k": "v"}).Add(7)
	reg.Histogram("b_seconds", "", nil, nil).Observe(2)
	snap := reg.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d points, want 2", len(snap))
	}
	if snap[0].Name != "a_total" || snap[0].Value != 7 || snap[0].Labels["k"] != "v" {
		t.Errorf("bad counter point: %+v", snap[0])
	}
	if snap[1].Name != "b_seconds" || snap[1].Count != 1 || snap[1].Sum != 2 {
		t.Errorf("bad histogram point: %+v", snap[1])
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-serialisable: %v", err)
	}
}

func TestMetricsSinkDerivesEngineMetrics(t *testing.T) {
	reg := NewRegistry()
	s := NewMetricsSink(reg)
	s.Emit(Event{Type: JobSubmitted, Job: "j"})
	s.Emit(Event{Type: TaskScheduled, Phase: "map"})
	s.Emit(Event{Type: AttemptSucceeded, Phase: "map", Attempt: 1, Locality: "data-local", Dur: 20 * time.Millisecond})
	s.Emit(Event{Type: AttemptFailed, Phase: "map", Err: "boom"})
	s.Emit(Event{Type: AttemptKilled, Phase: "reduce"})
	s.Emit(Event{Type: PhaseEnd, Phase: "shuffle", Value: 1234, Dur: time.Millisecond})
	s.Emit(Event{Type: JobFinished, Job: "j", Dur: 50 * time.Millisecond})

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"mr_jobs_submitted_total 1",
		`mr_jobs_finished_total{status="succeeded"} 1`,
		`mr_task_attempts_scheduled_total{phase="map"} 1`,
		`mr_task_attempts_total{phase="map",status="succeeded"} 1`,
		`mr_task_attempts_total{phase="map",status="failed"} 1`,
		`mr_task_attempts_total{phase="reduce",status="killed"} 1`,
		"mr_speculative_killed_total 1",
		"mr_shuffle_bytes_total 1234",
		`mr_task_locality_total{locality="data-local"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Attempt 1 (0-based) means 2 attempts for the task.
	if h := reg.Histogram("mr_attempts_per_task", "", attemptBuckets, nil); h.Sum() != 2 {
		t.Errorf("attempts_per_task sum = %g, want 2", h.Sum())
	}
}

func TestMetricsSinkPartitionCounters(t *testing.T) {
	reg := NewRegistry()
	s := NewMetricsSink(reg)
	s.Emit(Event{Type: PhaseEnd, Phase: "shuffle", Value: 60, Dur: time.Millisecond, Parts: []PartStat{
		{Part: 0, Runs: 2, Records: 3, Bytes: 10, DurUs: 5},
		{Part: 1, Runs: 2, Records: 97, Bytes: 50, DurUs: 40},
	}})
	// A second job's shuffle accumulates into the same partition series.
	s.Emit(Event{Type: PhaseEnd, Phase: "shuffle", Value: 4, Dur: time.Millisecond, Parts: []PartStat{
		{Part: 0, Runs: 1, Records: 1, Bytes: 4, DurUs: 2},
	}})

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`shuffle_partition_records{partition="0"} 4`,
		`shuffle_partition_records{partition="1"} 97`,
		`shuffle_partition_bytes{partition="0"} 14`,
		`shuffle_partition_bytes{partition="1"} 50`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryGaugeExposition(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("queue_depth", "Depth.", Labels{"q": "a"})
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge value = %d, want 7", g.Value())
	}
	// Same name+labels returns the same gauge.
	if reg.Gauge("queue_depth", "", Labels{"q": "a"}) != g {
		t.Error("registry returned a different gauge for same name+labels")
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE queue_depth gauge",
		`queue_depth{q="a"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	snap := reg.Snapshot()
	if len(snap) != 1 || snap[0].Name != "queue_depth" || snap[0].Value != 7 {
		t.Errorf("gauge snapshot: %+v", snap)
	}
}

func TestRuntimeSamplerPopulatesGauges(t *testing.T) {
	reg := NewRegistry()
	stop := StartRuntimeSampler(reg, time.Hour) // first sample is immediate
	defer stop()
	if v := reg.Gauge("go_goroutines", "", nil).Value(); v <= 0 {
		t.Errorf("go_goroutines = %d, want > 0", v)
	}
	if v := reg.Gauge("go_heap_alloc_bytes", "", nil).Value(); v <= 0 {
		t.Errorf("go_heap_alloc_bytes = %d, want > 0", v)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "go_heap_sys_bytes") {
		t.Error("runtime gauges missing from exposition")
	}
	stop()
	stop() // idempotent
}

func TestRecorderRetentionKeepsRunningJobs(t *testing.T) {
	r := &Recorder{MaxJobs: 2}
	// A pipeline span (no Job) and a long-running job that never
	// finishes during the test.
	r.Emit(Event{Type: SpanStart, Span: "pipe"})
	r.Emit(Event{Type: JobSubmitted, Job: "long-running", Parent: "pipe"})
	r.Emit(Event{Type: AttemptStarted, Job: "long-running", Phase: "map", Task: "map-0000"})
	// Three jobs finish around it; MaxJobs=2 must evict only the oldest.
	for _, j := range []string{"old-1", "old-2", "old-3"} {
		r.Emit(Event{Type: JobSubmitted, Job: j, Parent: "pipe"})
		r.Emit(Event{Type: JobFinished, Job: j})
	}

	byJob := map[string]int{}
	for _, e := range r.Events() {
		byJob[e.Job]++
	}
	if byJob["old-1"] != 0 {
		t.Errorf("oldest finished job retained %d events, want 0", byJob["old-1"])
	}
	for _, j := range []string{"old-2", "old-3"} {
		if byJob[j] != 2 {
			t.Errorf("job %s has %d events, want 2", j, byJob[j])
		}
	}
	// The still-running job and the span events are never pruned.
	if byJob["long-running"] != 2 {
		t.Errorf("running job has %d events, want 2 — retention dropped a live job", byJob["long-running"])
	}
	if byJob[""] != 1 {
		t.Errorf("span events pruned: %d, want 1", byJob[""])
	}

	// Once the running job finishes it becomes evictable like any other.
	r.Emit(Event{Type: JobFinished, Job: "long-running"})
	r.Emit(Event{Type: JobSubmitted, Job: "old-4"})
	r.Emit(Event{Type: JobFinished, Job: "old-4"})
	for _, e := range r.Events() {
		if e.Job == "old-2" {
			t.Fatal("old-2 should have been evicted after two more jobs finished")
		}
	}
}

func TestHistoryRetentionPrunesOldest(t *testing.T) {
	h := NewHistory(NewDirFS(t.TempDir()))
	h.SetMaxJobs(2)
	// Only finished jobs ever reach Save, so pruning the oldest record
	// files can never touch a running job; the in-memory side of that
	// guarantee is TestRecorderRetentionKeepsRunningJobs.
	for _, name := range []string{"job-a", "job-b", "job-c"} {
		if _, err := h.Save(JobRecord{Job: name}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := h.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("listed %d records after pruning, want 2", len(recs))
	}
	if recs[0].Job != "job-b" || recs[0].Seq != 2 || recs[1].Job != "job-c" || recs[1].Seq != 3 {
		t.Errorf("retained wrong records: %+v", recs)
	}
	if _, ok := h.Find("job-a"); ok {
		t.Error("pruned record still findable")
	}
	// Sequence numbering keeps advancing past pruned records.
	if _, err := h.Save(JobRecord{Job: "job-d"}); err != nil {
		t.Fatal(err)
	}
	if rec, ok := h.Find("job-d"); !ok || rec.Seq != 4 {
		t.Errorf("Find(job-d) = %+v, %v; want seq 4", rec, ok)
	}
}

func TestTrackerLifecycle(t *testing.T) {
	tr := NewTracker()
	t0 := time.Unix(1000, 0)
	tr.Emit(Event{Type: SpanStart, Span: "pipe", Time: t0})
	tr.Emit(Event{Type: JobSubmitted, Job: "j1", Parent: "pipe", Time: t0})
	tr.Emit(Event{Type: PhaseStart, Job: "j1", Phase: "map", Time: t0})
	tr.Emit(Event{Type: AttemptStarted, Job: "j1", Phase: "map", Task: "map-0000", Node: "n1", Time: t0})
	jobs := tr.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("tracking %d jobs, want 2 (span + job)", len(jobs))
	}
	if jobs[0].Kind != "span" || jobs[0].Name != "pipe" || jobs[0].State != "running" {
		t.Errorf("span state: %+v", jobs[0])
	}
	if jobs[1].Parent != "pipe" || jobs[1].RunningAttempts != 1 {
		t.Errorf("job state: %+v", jobs[1])
	}

	tr.Emit(Event{Type: AttemptSucceeded, Job: "j1", Phase: "map", Task: "map-0000", Node: "n1",
		Locality: "data-local", Time: t0.Add(time.Second)})
	tr.Emit(Event{Type: PhaseEnd, Job: "j1", Phase: "map", Dur: time.Second, Time: t0.Add(time.Second)})
	tr.Emit(Event{Type: JobFinished, Job: "j1", Time: t0.Add(time.Second)})
	tr.Emit(Event{Type: SpanEnd, Span: "pipe", Err: "exploded", Time: t0.Add(time.Second)})

	js, attempts, ok := tr.Job("j1")
	if !ok {
		t.Fatal("job j1 not found")
	}
	if js.State != "succeeded" || js.RunningAttempts != 0 || js.FinishedAttempts != 1 {
		t.Errorf("finished job state: %+v", js)
	}
	if len(js.Phases) != 1 || !js.Phases[0].Done || js.Phases[0].Wall != time.Second {
		t.Errorf("phase state: %+v", js.Phases)
	}
	if len(attempts) != 1 || attempts[0].Status != "succeeded" || attempts[0].Locality != "data-local" {
		t.Errorf("attempts: %+v", attempts)
	}
	if span, _, _ := tr.Job("pipe"); span.State != "failed" || span.Error != "exploded" {
		t.Errorf("span end state: %+v", span)
	}
}

func TestHistorySaveListFind(t *testing.T) {
	dir := t.TempDir()
	h := NewHistory(NewDirFS(dir))
	for i, name := range []string{"job-a", "job-b", "job-a"} {
		path, err := h.Save(JobRecord{Job: name, WallMs: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(path, HistoryDir+"/") {
			t.Errorf("record path %q not under %s", path, HistoryDir)
		}
	}
	recs, err := h.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("listed %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Seq != i+1 {
			t.Errorf("record %d has seq %d", i, r.Seq)
		}
	}
	// Find by name returns the latest matching record.
	if rec, ok := h.Find("job-a"); !ok || rec.Seq != 3 {
		t.Errorf("Find(job-a) = %+v, %v; want seq 3", rec, ok)
	}
	// Find by sequence number.
	if rec, ok := h.Find("2"); !ok || rec.Job != "job-b" {
		t.Errorf("Find(2) = %+v, %v; want job-b", rec, ok)
	}
	if _, ok := h.Find("nope"); ok {
		t.Error("Find matched a non-existent key")
	}

	// A new History over the same directory continues the numbering —
	// the cross-process case behind `gepeto history`.
	h2 := NewHistory(NewDirFS(dir))
	if _, err := h2.Save(JobRecord{Job: "job-c"}); err != nil {
		t.Fatal(err)
	}
	if rec, ok := h2.Find("job-c"); !ok || rec.Seq != 4 {
		t.Errorf("new store assigned seq %d, want 4", rec.Seq)
	}
}

// mapFS is an in-memory FS for tee tests.
type mapFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

func newMapFS() *mapFS { return &mapFS{files: make(map[string][]byte)} }

func (m *mapFS) Create(path string, data []byte, _ string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; ok {
		return fmt.Errorf("%s exists", path)
	}
	m.files[path] = append([]byte(nil), data...)
	return nil
}

func (m *mapFS) List(dir string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for p := range m.files {
		if strings.HasPrefix(p, dir+"/") {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

func (m *mapFS) Delete(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return fmt.Errorf("%s: no such file", path)
	}
	delete(m.files, path)
	return nil
}

func (m *mapFS) ReadAll(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[path]
	if !ok {
		return nil, fmt.Errorf("%s: no such file", path)
	}
	return data, nil
}

func TestTeeFS(t *testing.T) {
	prim, sec := newMapFS(), newMapFS()
	tee := Tee(prim, sec)
	if err := tee.Create("_history/000001-a.json", []byte("x"), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := prim.ReadAll("_history/000001-a.json"); err != nil {
		t.Error("primary missing the record")
	}
	if _, err := sec.ReadAll("_history/000001-a.json"); err != nil {
		t.Error("secondary missing the record")
	}
	// A secondary-only file is still listed and readable (fallback).
	if err := sec.Create("_history/000002-b.json", []byte("y"), ""); err != nil {
		t.Fatal(err)
	}
	if got := tee.List(HistoryDir); len(got) != 2 {
		t.Errorf("tee lists %v, want 2 entries", got)
	}
	if data, err := tee.ReadAll("_history/000002-b.json"); err != nil || string(data) != "y" {
		t.Errorf("tee fallback read = %q, %v", data, err)
	}
	// A mirror collision must not fail the create.
	if err := tee.Create("_history/000002-b.json", []byte("z"), ""); err != nil {
		t.Errorf("tee failed on secondary collision: %v", err)
	}
}

func TestRenderTimeline(t *testing.T) {
	rec := JobRecord{
		Job: "demo", MapTasks: 2, ReduceTasks: 1, WallMs: 100,
		Attempts: []AttemptRecord{
			{Task: "map-0000", Phase: "map", Node: "node-1", StartMs: 0, EndMs: 60, Status: "succeeded"},
			{Task: "map-0001", Phase: "map", Node: "node-2", StartMs: 0, EndMs: 30, Status: "failed", Error: "x"},
			{Task: "map-0001", Phase: "map", Attempt: 1, Node: "node-1", StartMs: 30, EndMs: 90, Status: "succeeded"},
			{Task: "reduce-0000", Phase: "reduce", Node: "node-2", StartMs: 60, EndMs: 100, Status: "killed", Backup: true},
		},
	}
	out := RenderTimeline(rec, 72)
	for _, want := range []string{
		"job demo — 2 map / 1 reduce tasks",
		"node-1 |",
		"node-2 |",
		"legend:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// Failed and killed attempts use their own fill characters.
	if !strings.Contains(out, "x") {
		t.Error("no failed-attempt marks in timeline")
	}
	if !strings.Contains(out, "~") {
		t.Error("no killed-attempt marks in timeline")
	}
	// Overlapping attempts on one node must stack onto separate lanes:
	// node-1 runs map-0000 (0-60) and map-0001/1 (30-90) concurrently.
	if n := strings.Count(out, "node-1 |"); n != 2 {
		t.Errorf("node-1 has %d lanes, want 2:\n%s", n, out)
	}
	if empty := RenderTimeline(JobRecord{Job: "none"}, 0); !strings.Contains(empty, "no attempt records") {
		t.Errorf("empty record render: %q", empty)
	}
}

// TestRenderTimelineFailedAndSpeculative pins down the exact lane
// layout of a retry-plus-speculation story: map-0001 fails on node-b,
// retries on node-a, is speculated on node-c, and the backup loses.
func TestRenderTimelineFailedAndSpeculative(t *testing.T) {
	rec := JobRecord{
		Job: "retry", MapTasks: 2, ReduceTasks: 0, WallMs: 200,
		Attempts: []AttemptRecord{
			{Task: "map-0000", Phase: "map", Node: "node-a", StartMs: 0, EndMs: 40, Status: "succeeded"},
			{Task: "map-0001", Phase: "map", Node: "node-b", StartMs: 0, EndMs: 50, Status: "failed", Error: "boom"},
			{Task: "map-0001", Phase: "map", Attempt: 1, Node: "node-a", StartMs: 60, EndMs: 200, Status: "succeeded"},
			{Task: "map-0001", Phase: "map", Attempt: 2, Node: "node-c", StartMs: 120, EndMs: 180, Status: "killed", Backup: true},
		},
	}
	out := RenderTimeline(rec, 80)
	lines := strings.Split(out, "\n")

	laneFor := func(node, marker string) string {
		t.Helper()
		for _, ln := range lines {
			if strings.HasPrefix(ln, node+" ") && strings.Contains(ln, marker) {
				return ln
			}
		}
		t.Fatalf("no %s lane containing %q:\n%s", node, marker, out)
		return ""
	}
	// The failed attempt renders with 'x' fill and its task/attempt label.
	failed := laneFor("node-b", "x")
	if !strings.Contains(failed, "map-0001/0") {
		t.Errorf("failed attempt lane missing label: %q", failed)
	}
	// The killed speculative backup renders with '~' fill on its node.
	killed := laneFor("node-c", "~")
	if !strings.Contains(killed, "map-0001/2") {
		t.Errorf("killed backup lane missing label: %q", killed)
	}
	// node-a's two attempts don't overlap, so they share a single lane.
	if n := strings.Count(out, "node-a |"); n != 1 {
		t.Errorf("node-a has %d lanes, want 1 (attempts are disjoint):\n%s", n, out)
	}
	if !strings.Contains(out, "wall 200ms") {
		t.Errorf("header missing wall time:\n%s", out)
	}
	if !strings.Contains(out, "legend: = succeeded   x failed   ~ speculative loser (killed)") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestStatusServerHandleAndShutdown(t *testing.T) {
	srv, err := NewStatusServer("127.0.0.1:0", NewTracker(), NewRegistry(), NewHistory(newMapFS()))
	if err != nil {
		t.Fatal(err)
	}
	srv.Handle("/trace/", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "trace-payload")
	}))

	resp, err := http.Get(srv.URL() + "/trace/j1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "trace-payload" {
		t.Errorf("/trace/j1 -> %d %q", resp.StatusCode, body)
	}
	// Registered patterns are advertised on the index page.
	resp, err = http.Get(srv.URL() + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "/trace/") {
		t.Errorf("index does not advertise /trace/: %q", body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// The listener is released: connecting again must fail.
	if _, err := http.Get(srv.URL() + "/"); err == nil {
		t.Error("server still serving after Shutdown")
	}
}

func TestStatusServerEndpoints(t *testing.T) {
	tr := NewTracker()
	tr.Emit(Event{Type: JobSubmitted, Job: "j1", Time: time.Unix(1, 0)})
	tr.Emit(Event{Type: AttemptStarted, Job: "j1", Phase: "map", Task: "map-0000", Node: "n1", Time: time.Unix(1, 0)})
	reg := NewRegistry()
	reg.Counter("mr_jobs_submitted_total", "Jobs.", nil).Inc()
	hist := NewHistory(NewDirFS(t.TempDir()))
	if _, err := hist.Save(JobRecord{Job: "j1"}); err != nil {
		t.Fatal(err)
	}

	srv, err := NewStatusServer("127.0.0.1:0", tr, reg, hist)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/"); code != 200 || !strings.Contains(body, "j1") {
		t.Errorf("/ -> %d %q", code, body)
	}
	if code, body := get("/jobs"); code != 200 || !strings.Contains(body, `"j1"`) {
		t.Errorf("/jobs -> %d %q", code, body)
	}
	code, body := get("/jobs/j1")
	if code != 200 || !strings.Contains(body, `"map-0000"`) {
		t.Errorf("/jobs/j1 -> %d %q", code, body)
	}
	if code, _ := get("/jobs/unknown"); code != 404 {
		t.Errorf("/jobs/unknown -> %d, want 404", code)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "mr_jobs_submitted_total 1") {
		t.Errorf("/metrics -> %d %q", code, body)
	}
	if code, body := get("/metrics.json"); code != 200 || !strings.Contains(body, "mr_jobs_submitted_total") {
		t.Errorf("/metrics.json -> %d %q", code, body)
	}
	if code, body := get("/history"); code != 200 || !strings.Contains(body, `"j1"`) {
		t.Errorf("/history -> %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline -> %d", code)
	}

	// The Extra hook appends to /metrics.
	srv.Extra = func() string { return "extra_gauge 42\n" }
	if _, body := get("/metrics"); !strings.Contains(body, "extra_gauge 42") {
		t.Error("/metrics missing Extra output")
	}
}
