// Package trace defines the mobility-trace data model used by GEPETO
// (paper §II) and implements the GeoLife PLT on-disk format (paper
// Fig. 1).
//
// A mobility trace is characterised by an identifier (device or
// pseudonym), a spatial coordinate, and a timestamp, optionally with
// additional information such as altitude. A trail of traces is the
// ordered movement record of one individual; a geolocated dataset is a
// set of trails from different individuals.
package trace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/geo"
)

// Trace is a single mobility trace: one timestamped position of one
// identifier, mirroring the record structure of GeoLife logs (Fig. 1 of
// the paper: latitude, longitude, a meaningless third field, altitude,
// fractional days since 1899-12-30, and date and time strings).
type Trace struct {
	// User identifies the individual (GeoLife directory name, e.g.
	// "000"). It may be a pseudonym or "unknown" for full anonymity.
	User string
	// Point is the spatial coordinate in decimal degrees.
	Point geo.Point
	// AltitudeFeet is the reported altitude in feet (GeoLife uses
	// feet; -777 denotes an invalid reading in the real dataset).
	AltitudeFeet float64
	// Time is the timestamp of the observation (UTC in GeoLife).
	Time time.Time
}

// geoLifeEpoch is the spreadsheet epoch GeoLife's fifth field counts
// fractional days from (1899-12-30, the Excel/Lotus day-zero).
var geoLifeEpoch = time.Date(1899, time.December, 30, 0, 0, 0, 0, time.UTC)

// DaysSinceEpoch returns the GeoLife fifth field: the number of days,
// with fractional part, elapsed since 1899-12-30.
func (t Trace) DaysSinceEpoch() float64 {
	return t.Time.Sub(geoLifeEpoch).Seconds() / 86400
}

// PLTLine renders the trace as one line of a GeoLife .plt file:
//
//	39.906631,116.385564,0,492,39745.090266,2008-10-24,02:09:59
func (t Trace) PLTLine() string {
	return fmt.Sprintf("%.6f,%.6f,0,%g,%.6f,%s,%s",
		t.Point.Lat, t.Point.Lon, t.AltitudeFeet,
		t.DaysSinceEpoch(),
		t.Time.Format("2006-01-02"), t.Time.Format("15:04:05"))
}

// ParsePLTLine parses one GeoLife .plt record line into a Trace for the
// given user. The timestamp is taken from the date and time string
// fields (sixth and seventh), which the paper identifies as the
// authoritative timestamp of the trace.
func ParsePLTLine(user, line string) (Trace, error) {
	fields := strings.Split(strings.TrimSpace(line), ",")
	if len(fields) != 7 {
		return Trace{}, fmt.Errorf("trace: PLT line has %d fields, want 7: %q", len(fields), line)
	}
	lat, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return Trace{}, fmt.Errorf("trace: bad latitude %q: %v", fields[0], err)
	}
	lon, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return Trace{}, fmt.Errorf("trace: bad longitude %q: %v", fields[1], err)
	}
	alt, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return Trace{}, fmt.Errorf("trace: bad altitude %q: %v", fields[3], err)
	}
	ts, err := time.Parse("2006-01-02 15:04:05", fields[5]+" "+fields[6])
	if err != nil {
		return Trace{}, fmt.Errorf("trace: bad timestamp %q %q: %v", fields[5], fields[6], err)
	}
	p := geo.Point{Lat: lat, Lon: lon}
	if !p.Valid() {
		return Trace{}, fmt.Errorf("trace: coordinate out of range: %v", p)
	}
	return Trace{User: user, Point: p, AltitudeFeet: alt, Time: ts}, nil
}

// Record renders the trace in the toolkit's internal key-value record
// form "user\tlat,lon,alt,unix" used as MapReduce values. It is more
// compact than PLT and embeds the user, so a record is self-contained
// once chunked.
func (t Trace) Record() string {
	return fmt.Sprintf("%s\t%.6f,%.6f,%g,%d",
		t.User, t.Point.Lat, t.Point.Lon, t.AltitudeFeet, t.Time.Unix())
}

// ParseRecord parses the internal record form produced by Record.
func ParseRecord(rec string) (Trace, error) {
	user, rest, ok := strings.Cut(rec, "\t")
	if !ok {
		return Trace{}, fmt.Errorf("trace: record missing tab: %q", rec)
	}
	fields := strings.Split(rest, ",")
	if len(fields) != 4 {
		return Trace{}, fmt.Errorf("trace: record has %d value fields, want 4: %q", len(fields), rec)
	}
	lat, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return Trace{}, fmt.Errorf("trace: bad latitude in record %q: %v", rec, err)
	}
	lon, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return Trace{}, fmt.Errorf("trace: bad longitude in record %q: %v", rec, err)
	}
	alt, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Trace{}, fmt.Errorf("trace: bad altitude in record %q: %v", rec, err)
	}
	unix, err := strconv.ParseInt(fields[3], 10, 64)
	if err != nil {
		return Trace{}, fmt.Errorf("trace: bad unix time in record %q: %v", rec, err)
	}
	return Trace{
		User:         user,
		Point:        geo.Point{Lat: lat, Lon: lon},
		AltitudeFeet: alt,
		Time:         time.Unix(unix, 0).UTC(),
	}, nil
}

// Trail is the time-ordered sequence of mobility traces of a single
// individual (paper §II: "a trail of traces is a collection of mobility
// traces recording the movements of an individual over some period of
// time").
type Trail struct {
	User   string
	Traces []Trace
}

// Sort orders the trail's traces chronologically (stable, so equal
// timestamps keep their original relative order).
func (tr *Trail) Sort() {
	sort.SliceStable(tr.Traces, func(i, j int) bool {
		return tr.Traces[i].Time.Before(tr.Traces[j].Time)
	})
}

// Span returns the first and last timestamps of the trail. It returns
// zero times for an empty trail. The trail must be sorted.
func (tr *Trail) Span() (first, last time.Time) {
	if len(tr.Traces) == 0 {
		return time.Time{}, time.Time{}
	}
	return tr.Traces[0].Time, tr.Traces[len(tr.Traces)-1].Time
}

// Dataset is a geolocated dataset: a set of trails from different
// individuals.
type Dataset struct {
	Trails []Trail
}

// NumTraces returns the total number of traces across all trails.
func (d *Dataset) NumTraces() int {
	n := 0
	for i := range d.Trails {
		n += len(d.Trails[i].Traces)
	}
	return n
}

// Users returns the sorted list of user identifiers in the dataset.
func (d *Dataset) Users() []string {
	users := make([]string, 0, len(d.Trails))
	for i := range d.Trails {
		users = append(users, d.Trails[i].User)
	}
	sort.Strings(users)
	return users
}

// Trail returns the trail for the given user, or nil if absent.
func (d *Dataset) Trail(user string) *Trail {
	for i := range d.Trails {
		if d.Trails[i].User == user {
			return &d.Trails[i]
		}
	}
	return nil
}

// AllTraces returns every trace in the dataset, grouped by trail in
// trail order. The returned slice is freshly allocated.
func (d *Dataset) AllTraces() []Trace {
	out := make([]Trace, 0, d.NumTraces())
	for i := range d.Trails {
		out = append(out, d.Trails[i].Traces...)
	}
	return out
}

// FromTraces groups a flat list of traces into a Dataset with one trail
// per user, each sorted chronologically. Users appear in sorted order.
func FromTraces(traces []Trace) *Dataset {
	byUser := make(map[string][]Trace)
	for _, t := range traces {
		byUser[t.User] = append(byUser[t.User], t)
	}
	users := make([]string, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Strings(users)
	d := &Dataset{Trails: make([]Trail, 0, len(users))}
	for _, u := range users {
		tr := Trail{User: u, Traces: byUser[u]}
		tr.Sort()
		d.Trails = append(d.Trails, tr)
	}
	return d
}

// MarshalPLT renders a trail as the body of a GeoLife .plt file,
// including the six-line header the real dataset carries.
func MarshalPLT(tr *Trail) string {
	var b strings.Builder
	b.WriteString("Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n")
	b.WriteString("0,2,255,My Track,0,0,2,8421376\n0\n")
	for _, t := range tr.Traces {
		b.WriteString(t.PLTLine())
		b.WriteByte('\n')
	}
	return b.String()
}

// UnmarshalPLT parses a GeoLife .plt file body (with or without the
// six-line header) into a trail for the given user.
func UnmarshalPLT(user, body string) (*Trail, error) {
	tr := &Trail{User: user}
	lines := strings.Split(body, "\n")
	for i, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Skip header lines: they are the first six lines and never
		// contain exactly 7 comma-separated fields starting with a
		// parseable latitude.
		if i < 6 && !looksLikeRecord(line) {
			continue
		}
		t, err := ParsePLTLine(user, line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", i+1, err)
		}
		tr.Traces = append(tr.Traces, t)
	}
	return tr, nil
}

func looksLikeRecord(line string) bool {
	fields := strings.Split(line, ",")
	if len(fields) != 7 {
		return false
	}
	_, err := strconv.ParseFloat(fields[0], 64)
	return err == nil
}

// FilterByTime returns a new dataset holding only traces in
// [from, to) — a basic curation operation of the toolkit. Empty trails
// are dropped.
func (d *Dataset) FilterByTime(from, to time.Time) *Dataset {
	out := &Dataset{}
	for _, tr := range d.Trails {
		kept := Trail{User: tr.User}
		for _, t := range tr.Traces {
			if !t.Time.Before(from) && t.Time.Before(to) {
				kept.Traces = append(kept.Traces, t)
			}
		}
		if len(kept.Traces) > 0 {
			out.Trails = append(out.Trails, kept)
		}
	}
	return out
}

// FilterByRect returns a new dataset holding only traces inside the
// rectangle. Empty trails are dropped.
func (d *Dataset) FilterByRect(r geo.Rect) *Dataset {
	out := &Dataset{}
	for _, tr := range d.Trails {
		kept := Trail{User: tr.User}
		for _, t := range tr.Traces {
			if r.Contains(t.Point) {
				kept.Traces = append(kept.Traces, t)
			}
		}
		if len(kept.Traces) > 0 {
			out.Trails = append(out.Trails, kept)
		}
	}
	return out
}

// FilterUsers returns a new dataset holding only the given users'
// trails (missing users are ignored).
func (d *Dataset) FilterUsers(users ...string) *Dataset {
	want := make(map[string]bool, len(users))
	for _, u := range users {
		want[u] = true
	}
	out := &Dataset{}
	for _, tr := range d.Trails {
		if want[tr.User] {
			out.Trails = append(out.Trails, tr)
		}
	}
	return out
}
