package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geo"
)

func mustTime(t *testing.T, s string) time.Time {
	t.Helper()
	ts, err := time.Parse("2006-01-02 15:04:05", s)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestParsePLTLineExample(t *testing.T) {
	// Structure from Fig. 1 of the paper (GeoLife record).
	line := "39.906631,116.385564,0,492,39745.090266,2008-10-24,02:09:59"
	tr, err := ParsePLTLine("000", line)
	if err != nil {
		t.Fatal(err)
	}
	if tr.User != "000" {
		t.Errorf("User = %q", tr.User)
	}
	if tr.Point.Lat != 39.906631 || tr.Point.Lon != 116.385564 {
		t.Errorf("Point = %v", tr.Point)
	}
	if tr.AltitudeFeet != 492 {
		t.Errorf("AltitudeFeet = %v", tr.AltitudeFeet)
	}
	want := mustTime(t, "2008-10-24 02:09:59")
	if !tr.Time.Equal(want) {
		t.Errorf("Time = %v, want %v", tr.Time, want)
	}
}

func TestDaysSinceEpochMatchesGeoLifeField(t *testing.T) {
	// 2008-10-24 02:09:59 UTC is 39745.090266 days after 1899-12-30.
	tr := Trace{Time: mustTime(t, "2008-10-24 02:09:59")}
	if got := tr.DaysSinceEpoch(); math.Abs(got-39745.090266) > 1e-5 {
		t.Fatalf("DaysSinceEpoch = %v, want 39745.090266", got)
	}
}

func TestPLTLineRoundTrip(t *testing.T) {
	orig := Trace{
		User:         "017",
		Point:        geo.Point{Lat: 39.906631, Lon: 116.385564},
		AltitudeFeet: 492,
		Time:         mustTime(t, "2008-10-24 02:09:59"),
	}
	line := orig.PLTLine()
	back, err := ParsePLTLine("017", line)
	if err != nil {
		t.Fatalf("%v (line %q)", err, line)
	}
	if back != orig {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", back, orig)
	}
}

func TestPLTLineRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(latRaw, lonRaw float64, altRaw int16, unixRaw int32) bool {
		tr := Trace{
			User:         "042",
			Point:        geo.Point{Lat: fold(latRaw, -90, 90), Lon: fold(lonRaw, -180, 180)},
			AltitudeFeet: float64(altRaw),
			Time:         time.Unix(int64(unixRaw)+1_000_000_000, 0).UTC(),
		}
		// PLT has 6-decimal precision; quantize expectations.
		back, err := ParsePLTLine("042", tr.PLTLine())
		if err != nil {
			return false
		}
		return math.Abs(back.Point.Lat-tr.Point.Lat) < 1e-6 &&
			math.Abs(back.Point.Lon-tr.Point.Lon) < 1e-6 &&
			back.AltitudeFeet == tr.AltitudeFeet &&
			back.Time.Equal(tr.Time)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParsePLTLineErrors(t *testing.T) {
	bad := []string{
		"",
		"39.9,116.4,0,492,39745.09,2008-10-24", // 6 fields
		"abc,116.4,0,492,39745.09,2008-10-24,02:09:59",
		"39.9,xyz,0,492,39745.09,2008-10-24,02:09:59",
		"39.9,116.4,0,bad,39745.09,2008-10-24,02:09:59",
		"39.9,116.4,0,492,39745.09,2008-13-45,02:09:59", // bad date
		"91.0,116.4,0,492,39745.09,2008-10-24,02:09:59", // lat out of range
	}
	for _, line := range bad {
		if _, err := ParsePLTLine("u", line); err == nil {
			t.Errorf("ParsePLTLine(%q): want error", line)
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	orig := Trace{
		User:         "153",
		Point:        geo.Point{Lat: 39.984702, Lon: 116.318417},
		AltitudeFeet: 492,
		Time:         time.Unix(1224813000, 0).UTC(),
	}
	back, err := ParseRecord(orig.Record())
	if err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", back, orig)
	}
}

func TestParseRecordErrors(t *testing.T) {
	bad := []string{
		"no-tab-here",
		"u\t1,2,3",              // 3 fields
		"u\t1,2,3,4,5",          // 5 fields
		"u\tx,2,3,4",            // bad lat
		"u\t1,y,3,4",            // bad lon
		"u\t1,2,z,4",            // bad alt
		"u\t1,2,3,4.5something", // bad unix
	}
	for _, rec := range bad {
		if _, err := ParseRecord(rec); err == nil {
			t.Errorf("ParseRecord(%q): want error", rec)
		}
	}
}

func TestTrailSortAndSpan(t *testing.T) {
	tr := Trail{User: "u", Traces: []Trace{
		{User: "u", Time: time.Unix(300, 0)},
		{User: "u", Time: time.Unix(100, 0)},
		{User: "u", Time: time.Unix(200, 0)},
	}}
	tr.Sort()
	for i := 1; i < len(tr.Traces); i++ {
		if tr.Traces[i].Time.Before(tr.Traces[i-1].Time) {
			t.Fatal("not sorted")
		}
	}
	first, last := tr.Span()
	if first != time.Unix(100, 0) || last != time.Unix(300, 0) {
		t.Fatalf("Span = %v, %v", first, last)
	}

	var empty Trail
	f, l := empty.Span()
	if !f.IsZero() || !l.IsZero() {
		t.Fatal("empty trail should have zero span")
	}
}

func TestFromTraces(t *testing.T) {
	traces := []Trace{
		{User: "b", Time: time.Unix(2, 0)},
		{User: "a", Time: time.Unix(5, 0)},
		{User: "b", Time: time.Unix(1, 0)},
		{User: "a", Time: time.Unix(3, 0)},
	}
	d := FromTraces(traces)
	if got := d.Users(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Users = %v", got)
	}
	if d.NumTraces() != 4 {
		t.Fatalf("NumTraces = %d", d.NumTraces())
	}
	b := d.Trail("b")
	if b == nil || len(b.Traces) != 2 || b.Traces[0].Time != time.Unix(1, 0) {
		t.Fatalf("Trail(b) = %+v", b)
	}
	if d.Trail("zzz") != nil {
		t.Fatal("missing user should return nil")
	}
	if got := len(d.AllTraces()); got != 4 {
		t.Fatalf("AllTraces len = %d", got)
	}
}

func TestMarshalUnmarshalPLT(t *testing.T) {
	tr := &Trail{User: "000", Traces: []Trace{
		{User: "000", Point: geo.Point{Lat: 39.906631, Lon: 116.385564}, AltitudeFeet: 492, Time: mustTime(t, "2008-10-24 02:09:59")},
		{User: "000", Point: geo.Point{Lat: 39.906712, Lon: 116.385601}, AltitudeFeet: 491, Time: mustTime(t, "2008-10-24 02:10:04")},
	}}
	body := MarshalPLT(tr)
	if !strings.HasPrefix(body, "Geolife trajectory\n") {
		t.Fatal("missing GeoLife header")
	}
	back, err := UnmarshalPLT("000", body)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(back.Traces))
	}
	for i := range back.Traces {
		if back.Traces[i] != tr.Traces[i] {
			t.Fatalf("trace %d mismatch: got %+v want %+v", i, back.Traces[i], tr.Traces[i])
		}
	}
}

func TestUnmarshalPLTWithoutHeader(t *testing.T) {
	body := "39.906631,116.385564,0,492,39745.090266,2008-10-24,02:09:59\n"
	tr, err := UnmarshalPLT("u", body)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(tr.Traces))
	}
}

func TestUnmarshalPLTBadBody(t *testing.T) {
	// A malformed record after the header region must error.
	body := MarshalPLT(&Trail{User: "u"}) + "this,is,not,a,valid,record,line\n"
	if _, err := UnmarshalPLT("u", body); err == nil {
		t.Fatal("want error for malformed record")
	}
}

func fold(v, lo, hi float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	span := hi - lo
	v = math.Mod(v-lo, span)
	if v < 0 {
		v += span
	}
	return lo + v
}

func TestDatasetFilters(t *testing.T) {
	mk := func(user string, lat float64, unix int64) Trace {
		return Trace{User: user, Point: geo.Point{Lat: lat, Lon: 116.4}, Time: time.Unix(unix, 0)}
	}
	d := FromTraces([]Trace{
		mk("a", 39.5, 100), mk("a", 39.9, 200), mk("a", 40.2, 300),
		mk("b", 39.8, 150), mk("b", 39.9, 250),
	})

	byTime := d.FilterByTime(time.Unix(150, 0), time.Unix(300, 0))
	if byTime.NumTraces() != 3 {
		t.Fatalf("FilterByTime kept %d, want 3 (150,200,250)", byTime.NumTraces())
	}

	rect := geo.Rect{Min: geo.Point{Lat: 39.7, Lon: 116.0}, Max: geo.Point{Lat: 40.0, Lon: 117.0}}
	byRect := d.FilterByRect(rect)
	if byRect.NumTraces() != 3 {
		t.Fatalf("FilterByRect kept %d, want 3 (39.9, 39.8, 39.9)", byRect.NumTraces())
	}

	byUser := d.FilterUsers("b", "zzz")
	if len(byUser.Trails) != 1 || byUser.Trails[0].User != "b" {
		t.Fatalf("FilterUsers = %+v", byUser.Trails)
	}

	// Empty-trail dropping: a window matching nothing yields no trails.
	if got := d.FilterByTime(time.Unix(900, 0), time.Unix(901, 0)); len(got.Trails) != 0 {
		t.Fatalf("empty filter left %d trails", len(got.Trails))
	}
}
