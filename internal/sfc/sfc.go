// Package sfc implements space-filling curves that map two-dimensional
// spatial coordinates to one-dimensional scalar values while preserving
// data locality.
//
// The paper's MapReduce R-tree construction (§VII-C) relies on such
// curves for its partitioning function: points that are close in the
// spatial domain should be assigned to the same partition, so the
// partitioner maps 2-D points to an ordered sequence of 1-D values and
// cuts that sequence into equally sized ranges. Two curves are
// implemented and tested, as in the paper: the Z-order (Morton) curve
// and the Hilbert curve.
package sfc

import (
	"fmt"

	"repro/internal/geo"
)

// Order is the number of bits of resolution per dimension used when
// quantising coordinates onto the curve grid. 16 bits per dimension
// gives a 65536×65536 grid — about 0.6 m resolution over a metropolitan
// bounding box, far finer than GPS accuracy — while keeping curve keys
// in a uint32-sized range per dimension (uint64 combined).
const Order = 16

// Curve maps 2-D points to 1-D scalar keys, preserving locality.
type Curve interface {
	// Key returns the 1-D scalar value of p. Points outside the
	// curve's bounding rectangle are clamped to its edges.
	Key(p geo.Point) uint64
	// Name returns the curve's canonical name ("zorder" or "hilbert").
	Name() string
}

// New constructs the named curve ("zorder" or "hilbert") over the given
// bounding rectangle.
func New(name string, bounds geo.Rect) (Curve, error) {
	switch name {
	case "zorder", "z-order", "morton":
		return NewZOrder(bounds), nil
	case "hilbert":
		return NewHilbert(bounds), nil
	}
	return nil, fmt.Errorf("sfc: unknown curve %q", name)
}

// grid quantises points within a bounding rectangle onto an
// Order-bit-per-dimension integer grid.
type grid struct {
	bounds geo.Rect
	// scale per degree for each axis
	latScale, lonScale float64
}

func newGrid(bounds geo.Rect) grid {
	g := grid{bounds: bounds}
	maxCell := float64(uint64(1)<<Order - 1)
	if dLat := bounds.Max.Lat - bounds.Min.Lat; dLat > 0 {
		g.latScale = maxCell / dLat
	}
	if dLon := bounds.Max.Lon - bounds.Min.Lon; dLon > 0 {
		g.lonScale = maxCell / dLon
	}
	return g
}

// cell returns the integer grid cell of p, clamping out-of-bounds
// coordinates to the grid edges.
func (g grid) cell(p geo.Point) (x, y uint32) {
	maxCell := uint64(1)<<Order - 1
	fx := (p.Lon - g.bounds.Min.Lon) * g.lonScale
	fy := (p.Lat - g.bounds.Min.Lat) * g.latScale
	x = uint32(clampF(fx, 0, float64(maxCell)))
	y = uint32(clampF(fy, 0, float64(maxCell)))
	return x, y
}

func clampF(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	}
	return v
}

// ZOrder is the Z-order (Morton) curve: the key interleaves the bits of
// the quantised x and y coordinates.
type ZOrder struct{ g grid }

// NewZOrder returns a Z-order curve over the bounding rectangle.
func NewZOrder(bounds geo.Rect) *ZOrder { return &ZOrder{g: newGrid(bounds)} }

// Name implements Curve.
func (*ZOrder) Name() string { return "zorder" }

// Key implements Curve: it interleaves the bits of the grid cell
// coordinates (x in even positions, y in odd).
func (z *ZOrder) Key(p geo.Point) uint64 {
	x, y := z.g.cell(p)
	return interleave(x) | interleave(y)<<1
}

// interleave spreads the low Order bits of v so that bit i of v lands
// at bit 2i of the result (the classic Morton "part1by1" bit trick).
func interleave(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// deinterleave is the inverse of interleave: it compacts the even bits
// of x into a uint32.
func deinterleave(x uint64) uint32 {
	x &= 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0F0F0F0F0F0F0F0F
	x = (x | x>>4) & 0x00FF00FF00FF00FF
	x = (x | x>>8) & 0x0000FFFF0000FFFF
	x = (x | x>>16) & 0x00000000FFFFFFFF
	return uint32(x)
}

// DecodeCell returns the grid cell encoded in a Z-order key. Exposed
// for testing and for diagnostics.
func (*ZOrder) DecodeCell(key uint64) (x, y uint32) {
	return deinterleave(key), deinterleave(key >> 1)
}

// Hilbert is the Hilbert curve, which has strictly better locality
// than Z-order: successive keys are always adjacent grid cells.
type Hilbert struct{ g grid }

// NewHilbert returns a Hilbert curve over the bounding rectangle.
func NewHilbert(bounds geo.Rect) *Hilbert { return &Hilbert{g: newGrid(bounds)} }

// Name implements Curve.
func (*Hilbert) Name() string { return "hilbert" }

// Key implements Curve using the iterative xy→d conversion for a
// 2^Order × 2^Order Hilbert curve.
func (h *Hilbert) Key(p geo.Point) uint64 {
	x32, y32 := h.g.cell(p)
	x, y := uint64(x32), uint64(y32)
	var rx, ry, d uint64
	for s := uint64(1) << (Order - 1); s > 0; s /= 2 {
		if x&s > 0 {
			rx = 1
		} else {
			rx = 0
		}
		if y&s > 0 {
			ry = 1
		} else {
			ry = 0
		}
		d += s * s * ((3 * rx) ^ ry)
		x, y = hilbertRot(s, x, y, rx, ry)
	}
	return d
}

// DecodeCell returns the grid cell at Hilbert distance d (the inverse
// of Key up to quantisation). Exposed for testing.
func (*Hilbert) DecodeCell(d uint64) (x, y uint32) {
	var rx, ry uint64
	var xx, yy uint64
	t := d
	for s := uint64(1); s < uint64(1)<<Order; s *= 2 {
		rx = 1 & (t / 2)
		ry = 1 & (t ^ rx)
		xx, yy = hilbertRot(s, xx, yy, rx, ry)
		xx += s * rx
		yy += s * ry
		t /= 4
	}
	return uint32(xx), uint32(yy)
}

// hilbertRot rotates/flips a quadrant appropriately.
func hilbertRot(s, x, y, rx, ry uint64) (uint64, uint64) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}
