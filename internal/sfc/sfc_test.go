package sfc

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

// beijing is a metropolitan bounding box like the GeoLife extent.
var beijing = geo.Rect{
	Min: geo.Point{Lat: 39.4, Lon: 115.9},
	Max: geo.Point{Lat: 40.5, Lon: 117.1},
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"zorder", "z-order", "morton", "hilbert"} {
		c, err := New(name, beijing)
		if err != nil || c == nil {
			t.Fatalf("New(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := New("peano", beijing); err == nil {
		t.Fatal("unknown curve should error")
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		v &= 1<<Order - 1
		return deinterleave(interleave(v)) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestZOrderDecodeRoundTrip(t *testing.T) {
	z := NewZOrder(beijing)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		p := randPoint(rng)
		key := z.Key(p)
		x, y := z.DecodeCell(key)
		wx, wy := z.g.cell(p)
		if x != wx || y != wy {
			t.Fatalf("decode mismatch at %v: got (%d,%d), want (%d,%d)", p, x, y, wx, wy)
		}
	}
}

func TestHilbertDecodeRoundTrip(t *testing.T) {
	h := NewHilbert(beijing)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		p := randPoint(rng)
		key := h.Key(p)
		x, y := h.DecodeCell(key)
		wx, wy := h.g.cell(p)
		if x != wx || y != wy {
			t.Fatalf("decode mismatch at %v: got (%d,%d), want (%d,%d)", p, x, y, wx, wy)
		}
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// Defining property of the Hilbert curve: consecutive curve
	// positions are adjacent grid cells (Manhattan distance 1).
	h := NewHilbert(beijing)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		d := rng.Uint64() % (1<<(2*Order) - 1)
		x1, y1 := h.DecodeCell(d)
		x2, y2 := h.DecodeCell(d + 1)
		dist := absDiff(x1, x2) + absDiff(y1, y2)
		if dist != 1 {
			t.Fatalf("cells at d=%d and d+1 are %d apart: (%d,%d) vs (%d,%d)", d, dist, x1, y1, x2, y2)
		}
	}
}

func TestKeysClampOutOfBounds(t *testing.T) {
	for _, c := range []Curve{NewZOrder(beijing), NewHilbert(beijing)} {
		outside := []geo.Point{
			{Lat: 0, Lon: 0},
			{Lat: 89, Lon: 179},
			{Lat: beijing.Min.Lat - 10, Lon: beijing.Min.Lon - 10},
		}
		for _, p := range outside {
			key := c.Key(p) // must not panic; must be a valid key
			if key >= uint64(1)<<(2*Order) {
				t.Fatalf("%s: key %d out of range for point %v", c.Name(), key, p)
			}
		}
	}
}

func TestKeyMonotonicAlongAxis(t *testing.T) {
	// Moving east along a single grid row must give non-decreasing cell
	// x; keys won't be monotone (curves fold), but cells must be.
	z := NewZOrder(beijing)
	prevX := uint32(0)
	for lon := beijing.Min.Lon; lon <= beijing.Max.Lon; lon += 0.01 {
		x, _ := z.g.cell(geo.Point{Lat: 39.9, Lon: lon})
		if x < prevX {
			t.Fatalf("cell x decreased: %d -> %d at lon %v", prevX, x, lon)
		}
		prevX = x
	}
}

// localityRatio measures average key distance of spatially-near pairs
// divided by that of random pairs; lower means better locality.
func localityRatio(c Curve, rng *rand.Rand) float64 {
	const n = 2000
	var nearSum, farSum float64
	for i := 0; i < n; i++ {
		p := randPoint(rng)
		// A point ~50m away.
		q := geo.Destination(p, rng.Float64()*360, 50)
		r := randPoint(rng)
		nearSum += math.Abs(float64(c.Key(p)) - float64(c.Key(q)))
		farSum += math.Abs(float64(c.Key(p)) - float64(c.Key(r)))
	}
	return nearSum / farSum
}

func TestCurvesPreserveLocality(t *testing.T) {
	// Points 50m apart must be far closer in key space than random
	// pairs — this is the property the partitioning function needs.
	for _, c := range []Curve{NewZOrder(beijing), NewHilbert(beijing)} {
		ratio := localityRatio(c, rand.New(rand.NewSource(42)))
		if ratio > 0.05 {
			t.Errorf("%s: locality ratio %v, want < 0.05", c.Name(), ratio)
		}
	}
}

func TestHilbertLocalityNotWorseThanZOrder(t *testing.T) {
	zr := localityRatio(NewZOrder(beijing), rand.New(rand.NewSource(7)))
	hr := localityRatio(NewHilbert(beijing), rand.New(rand.NewSource(7)))
	if hr > zr*1.5 {
		t.Errorf("hilbert ratio %v much worse than zorder %v", hr, zr)
	}
}

func TestEqualPartitionsBalance(t *testing.T) {
	// Emulate the paper's partitioning: sort keys, cut into p ranges,
	// verify partitions are roughly balanced for clustered data.
	h := NewHilbert(beijing)
	rng := rand.New(rand.NewSource(9))
	const n, parts = 10000, 8
	keys := make([]uint64, n)
	// Clustered data: 5 hotspots.
	centers := make([]geo.Point, 5)
	for i := range centers {
		centers[i] = randPoint(rng)
	}
	for i := range keys {
		c := centers[rng.Intn(len(centers))]
		p := geo.Destination(c, rng.Float64()*360, rng.Float64()*500)
		keys[i] = h.Key(p)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	// Cut at every n/parts-th key.
	bounds := make([]uint64, parts-1)
	for i := range bounds {
		bounds[i] = keys[(i+1)*n/parts]
	}
	counts := make([]int, parts)
	for _, k := range keys {
		idx := sort.Search(len(bounds), func(i int) bool { return bounds[i] > k })
		counts[idx]++
	}
	for i, c := range counts {
		if c < n/parts/2 || c > n/parts*2 {
			t.Errorf("partition %d has %d points, want ~%d", i, c, n/parts)
		}
	}
}

func TestDegenerateBounds(t *testing.T) {
	// A zero-area bounding rect must not divide by zero; all keys equal.
	pt := geo.Point{Lat: 39.9, Lon: 116.4}
	c := NewHilbert(geo.RectFromPoint(pt))
	k1 := c.Key(pt)
	k2 := c.Key(geo.Point{Lat: 40, Lon: 117})
	if k1 != k2 {
		t.Fatalf("degenerate bounds: keys differ: %d vs %d", k1, k2)
	}
}

func randPoint(rng *rand.Rand) geo.Point {
	return geo.Point{
		Lat: beijing.Min.Lat + rng.Float64()*(beijing.Max.Lat-beijing.Min.Lat),
		Lon: beijing.Min.Lon + rng.Float64()*(beijing.Max.Lon-beijing.Min.Lon),
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func BenchmarkZOrderKey(b *testing.B) {
	z := NewZOrder(beijing)
	p := geo.Point{Lat: 39.99, Lon: 116.32}
	for i := 0; i < b.N; i++ {
		_ = z.Key(p)
	}
}

func BenchmarkHilbertKey(b *testing.B) {
	h := NewHilbert(beijing)
	p := geo.Point{Lat: 39.99, Lon: 116.32}
	for i := 0; i < b.N; i++ {
		_ = h.Key(p)
	}
}
