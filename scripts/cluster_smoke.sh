#!/usr/bin/env bash
# Multi-process cluster smoke test: run the same k-means job once
# in-process and once as a real deployment — one jobtracker process,
# three worker processes over TCP — kill one worker mid-run, and
# require the final centroids to match byte for byte.
#
# This is the end-to-end proof behind the executor split: the scheduler
# cannot tell the two backends apart, and losing a tasktracker costs
# retries, never answers.
#
# The run also exercises the observability plane: the jobtracker serves
# its status server with -linger, and the script scrapes /cluster,
# /metrics (federated per-worker series) and the live worker table,
# then renders the clock-aligned Chrome trace via `gepeto analyze`.
# Set ARTIFACT_DIR to keep the trace + scrapes (CI uploads them).
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/gepeto" ./cmd/gepeto

echo "== generate corpus"
"$workdir/gepeto" generate -users 5 -traces 20000 -seed 42 -out "$workdir/data" >/dev/null

echo "== in-process reference run"
"$workdir/gepeto" kmeans -in "$workdir/data" -k 5 -maxiter 5 -seed 1 -combiner \
    -nodes 3 -racks 2 -slots 4 \
    -centroids-out "$workdir/expected.txt" >/dev/null

echo "== multi-process run (3 workers, one killed mid-run)"
"$workdir/gepeto" jobtracker -in "$workdir/data" -k 5 -maxiter 5 -seed 1 -combiner \
    -nodes 3 -racks 2 -slots 4 -workers 3 -grace 1s \
    -addr-file "$workdir/jt.addr" \
    -status :0 -status-file "$workdir/status.addr" \
    -historydir "$workdir/history" -linger 60s -log-level info \
    -centroids-out "$workdir/actual.txt" &
jt_pid=$!
pids+=("$jt_pid")

worker_pids=()
for i in 0 1 2; do
    # The per-task overhead stretches the run so the kill below lands
    # while the job is still in flight. node-02 runs on a clock skewed
    # 2s into the future, so the trace only assembles cleanly if the
    # jobtracker's offset correction works.
    skew=0s
    [ "$i" = 2 ] && skew=2s
    "$workdir/gepeto" worker -node "node-0$i" -slots 4 \
        -addr-file "$workdir/jt.addr" -task-overhead 100ms \
        -clock-skew "$skew" -log-level warn &
    worker_pids+=("$!")
    pids+=("$!")
done

sleep 1
echo "== killing worker node-01 (pid ${worker_pids[1]})"
kill -9 "${worker_pids[1]}" 2>/dev/null || true

echo "== waiting for the job (jobtracker lingers for scraping)"
deadline=$((SECONDS + 120))
while [ ! -s "$workdir/actual.txt" ]; do
    if ! kill -0 "$jt_pid" 2>/dev/null; then
        echo "FAIL: jobtracker exited before producing centroids" >&2
        exit 1
    fi
    if [ "$SECONDS" -ge "$deadline" ]; then
        echo "FAIL: job never finished" >&2
        exit 1
    fi
    sleep 0.5
done

status_addr=$(cat "$workdir/status.addr")
echo "== scraping the lingering status server on $status_addr"
curl -fsS "http://$status_addr/cluster" >"$workdir/cluster.txt"
curl -fsS "http://$status_addr/cluster.json" >"$workdir/cluster.json"
curl -fsS "http://$status_addr/metrics" >"$workdir/metrics.txt"
"$workdir/gepeto" cluster -status "$status_addr" >"$workdir/cluster_cli.txt"

echo "== asserting the cluster view"
for node in node-00 node-02; do
    if ! grep -q "$node" "$workdir/cluster.txt"; then
        echo "FAIL: /cluster missing surviving worker $node" >&2
        cat "$workdir/cluster.txt" >&2
        exit 1
    fi
done
if ! grep -q "lost" "$workdir/cluster.txt"; then
    echo "FAIL: /cluster does not report the killed worker as lost" >&2
    cat "$workdir/cluster.txt" >&2
    exit 1
fi
if ! cmp -s "$workdir/cluster.txt" "$workdir/cluster_cli.txt"; then
    # Heartbeat ages advance between the two scrapes; only require the
    # CLI to render the same worker set, not identical bytes.
    for node in node-00 node-02; do
        if ! grep -q "$node" "$workdir/cluster_cli.txt"; then
            echo "FAIL: gepeto cluster missing worker $node" >&2
            cat "$workdir/cluster_cli.txt" >&2
            exit 1
        fi
    done
fi

echo "== asserting federated per-worker metrics"
for node in node-00 node-02; do
    # Every surviving worker must federate nonzero RPC client calls.
    if ! awk -v node="$node" '
        /^rpc_client_calls_total\{/ && index($0, "worker=\"" node "\"") { sum += $NF }
        END { exit (sum > 0 ? 0 : 1) }' "$workdir/metrics.txt"; then
        echo "FAIL: /metrics has no rpc_client_calls_total for $node" >&2
        grep "^rpc_client_calls_total" "$workdir/metrics.txt" >&2 || true
        exit 1
    fi
done
for family in rpc_server_handled_total cluster_workers cluster_worker_heartbeat_age_seconds; do
    if ! grep -q "^$family" "$workdir/metrics.txt"; then
        echo "FAIL: /metrics missing $family" >&2
        exit 1
    fi
done

echo "== rendering the clock-aligned Chrome trace"
"$workdir/gepeto" analyze -dir "$workdir/history" >"$workdir/traces.txt"
seq=$(awk 'NR==2{print $1}' "$workdir/traces.txt")
"$workdir/gepeto" analyze -dir "$workdir/history" -chrome "$workdir/trace.json" "$seq" >"$workdir/analyze.txt"
if ! grep -q "rpc overhead:" "$workdir/analyze.txt"; then
    echo "FAIL: analyze report has no rpc overhead section" >&2
    cat "$workdir/analyze.txt" >&2
    exit 1
fi
if ! grep -q "(worker)" "$workdir/trace.json"; then
    echo "FAIL: Chrome trace has no worker-side exec lanes" >&2
    exit 1
fi

if [ -n "${ARTIFACT_DIR:-}" ]; then
    mkdir -p "$ARTIFACT_DIR"
    cp "$workdir/trace.json" "$workdir/analyze.txt" "$workdir/cluster.txt" \
       "$workdir/cluster.json" "$workdir/metrics.txt" "$ARTIFACT_DIR/"
fi

echo "== ending the linger"
kill -INT "$jt_pid" 2>/dev/null || true
if ! wait "$jt_pid"; then
    echo "FAIL: jobtracker exited nonzero" >&2
    exit 1
fi

# Surviving workers exit via the jobtracker's shutdown; don't fail the
# script on their status.
wait "${worker_pids[0]}" 2>/dev/null || true
wait "${worker_pids[2]}" 2>/dev/null || true

echo "== diff centroids"
if ! diff -u "$workdir/expected.txt" "$workdir/actual.txt"; then
    echo "FAIL: multi-process centroids differ from in-process run" >&2
    exit 1
fi
echo "PASS: centroids byte-identical across backends, cluster view + federated metrics + clock-aligned trace verified"
