#!/usr/bin/env bash
# Multi-process cluster smoke test: run the same k-means job once
# in-process and once as a real deployment — one jobtracker process,
# three worker processes over TCP — kill one worker mid-run, and
# require the final centroids to match byte for byte.
#
# This is the end-to-end proof behind the executor split: the scheduler
# cannot tell the two backends apart, and losing a tasktracker costs
# retries, never answers.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/gepeto" ./cmd/gepeto

echo "== generate corpus"
"$workdir/gepeto" generate -users 5 -traces 20000 -seed 42 -out "$workdir/data" >/dev/null

echo "== in-process reference run"
"$workdir/gepeto" kmeans -in "$workdir/data" -k 5 -maxiter 5 -seed 1 -combiner \
    -nodes 3 -racks 2 -slots 4 \
    -centroids-out "$workdir/expected.txt" >/dev/null

echo "== multi-process run (3 workers, one killed mid-run)"
"$workdir/gepeto" jobtracker -in "$workdir/data" -k 5 -maxiter 5 -seed 1 -combiner \
    -nodes 3 -racks 2 -slots 4 -workers 3 -grace 1s \
    -addr-file "$workdir/jt.addr" \
    -centroids-out "$workdir/actual.txt" &
jt_pid=$!
pids+=("$jt_pid")

worker_pids=()
for i in 0 1 2; do
    # The per-task overhead stretches the run so the kill below lands
    # while the job is still in flight.
    "$workdir/gepeto" worker -node "node-0$i" -slots 4 \
        -addr-file "$workdir/jt.addr" -task-overhead 100ms &
    worker_pids+=("$!")
    pids+=("$!")
done

sleep 1
echo "== killing worker node-01 (pid ${worker_pids[1]})"
kill -9 "${worker_pids[1]}" 2>/dev/null || true

if ! wait "$jt_pid"; then
    echo "FAIL: jobtracker exited nonzero" >&2
    exit 1
fi

# Surviving workers exit via the jobtracker's shutdown; don't fail the
# script on their status.
wait "${worker_pids[0]}" 2>/dev/null || true
wait "${worker_pids[2]}" 2>/dev/null || true

echo "== diff centroids"
if ! diff -u "$workdir/expected.txt" "$workdir/actual.txt"; then
    echo "FAIL: multi-process centroids differ from in-process run" >&2
    exit 1
fi
echo "PASS: centroids byte-identical across backends (with a worker killed mid-run)"
