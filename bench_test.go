// Package repro's root benchmarks map one-to-one onto the paper's
// tables and figures (see DESIGN.md's experiment index). They run on a
// scaled-down GeoLife-like corpus; cmd/benchtab regenerates the actual
// paper tables, while these benches track the performance of each
// reproduced pipeline under `go test -bench`.
package repro

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/geolife"
	"repro/internal/gepeto"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/privacy"
	"repro/internal/recordio"
	"repro/internal/rtree"
	"repro/internal/trace"
)

// benchCorpus is a paper178-shaped corpus at 1/32 scale (~64k traces),
// generated once and shared read-only across benchmarks.
var (
	corpusOnce  sync.Once
	benchCorpus *trace.Dataset
	benchTruth  *geolife.GroundTruth
)

func corpus(b *testing.B) (*trace.Dataset, *geolife.GroundTruth) {
	b.Helper()
	corpusOnce.Do(func() {
		benchCorpus, benchTruth = geolife.GenerateWithTruth(geolife.Scaled(1, 32))
	})
	return benchCorpus, benchTruth
}

// uniq generates process-unique DFS directory names. The counter is
// atomic so benchmarks stay race-free under b.RunParallel or -race.
var uniqCounter atomic.Int64

func uniq(prefix string) string {
	return fmt.Sprintf("%s-%04d", prefix, uniqCounter.Add(1))
}

// reportRecordsPerSec standardizes throughput reporting across the
// end-to-end pipeline benchmarks: input records processed per wall
// second, the same unit as the records_per_sec field of
// internal/obs/perf trajectory records. records is the per-iteration
// input volume.
func reportRecordsPerSec(b *testing.B, records int64) {
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(records)*float64(b.N)/secs, "records/sec")
	}
}

// newBenchToolkit deploys the standard 7-node testbed with the given
// chunk size and uploads the shared corpus as two large files.
func newBenchToolkit(b *testing.B, chunkSize int64) (*core.Toolkit, *trace.Dataset) {
	b.Helper()
	ds, _ := corpus(b)
	tk, err := core.NewToolkit(core.ClusterConfig{
		Nodes: 7, Racks: 2, SlotsPerNode: 4, ChunkSize: chunkSize, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := geolife.WriteRecordsConcat(tk.FS(), "data", ds, 2); err != nil {
		b.Fatal(err)
	}
	return tk, ds
}

// BenchmarkTableI_Sampling measures the §V down-sampling job at the
// three window sizes of Table I, reporting the collapse ratio.
func BenchmarkTableI_Sampling(b *testing.B) {
	for _, window := range []time.Duration{time.Minute, 5 * time.Minute, 10 * time.Minute} {
		b.Run(window.String(), func(b *testing.B) {
			tk, ds := newBenchToolkit(b, 2<<20)
			b.ResetTimer()
			var kept int64
			for i := 0; i < b.N; i++ {
				res, err := tk.Sample("data", uniq("out"), window, gepeto.SampleUpperLimit)
				if err != nil {
					b.Fatal(err)
				}
				kept = res.Counters.Value("task", "map_output_records")
			}
			b.ReportMetric(float64(ds.NumTraces())/float64(kept), "collapse-ratio")
			reportRecordsPerSec(b, int64(ds.NumTraces()))
		})
	}
}

// BenchmarkFig2_SamplingStrategies compares the two representative-
// selection techniques (Figs. 2-3); they must cost the same.
func BenchmarkFig2_SamplingStrategies(b *testing.B) {
	ds, _ := corpus(b)
	for _, tech := range []gepeto.SamplingTechnique{gepeto.SampleUpperLimit, gepeto.SampleMiddle} {
		b.Run(tech.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gepeto.SampleSequential(ds, time.Minute, tech)
			}
		})
	}
}

// BenchmarkSamplingJobScaling reproduces the §V scaling observation:
// the same sampling job on a 7-node vs a 31-node deployment (the
// paper's sampling experiment used 31 Parapluie nodes, 124 mappers).
func BenchmarkSamplingJobScaling(b *testing.B) {
	for _, nodes := range []int{7, 31} {
		b.Run(fmt.Sprintf("nodes-%d", nodes), func(b *testing.B) {
			ds, _ := corpus(b)
			tk, err := core.NewToolkit(core.ClusterConfig{
				Nodes: nodes, Racks: 4, SlotsPerNode: 4, ChunkSize: 256 << 10, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := geolife.WriteRecordsConcat(tk.FS(), "data", ds, 8); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tk.Sample("data", uniq("out"), 10*time.Second, gepeto.SampleUpperLimit); err != nil {
					b.Fatal(err)
				}
			}
			reportRecordsPerSec(b, int64(ds.NumTraces()))
		})
	}
}

// BenchmarkTableIII_KMeans measures one k-means iteration per Table
// III scenario: {dataset size} x {distance} x {chunk size}.
func BenchmarkTableIII_KMeans(b *testing.B) {
	for _, size := range []struct {
		name  string
		scale int
	}{{"66MB", 62}, {"128MB", 32}} { // 1.05M/32812 and 2.03M/63552 at 1/32 of paper scale
		for _, metric := range []geo.Metric{geo.MetricSquaredEuclidean, geo.MetricHaversine} {
			for _, chunk := range []int64{2 << 20, 1 << 20} { // 64MB and 32MB at 1/32 scale
				name := fmt.Sprintf("%s/%s/chunk-%dKB", size.name, metric, chunk>>10)
				b.Run(name, func(b *testing.B) {
					ds := geolife.Generate(geolife.Scaled(1, size.scale))
					tk, err := core.NewToolkit(core.ClusterConfig{
						Nodes: 7, Racks: 2, SlotsPerNode: 4, ChunkSize: chunk, Seed: 1,
					})
					if err != nil {
						b.Fatal(err)
					}
					if err := geolife.WriteRecordsConcat(tk.FS(), "data", ds, 2); err != nil {
						b.Fatal(err)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						// One iteration: MaxIter=1 runs exactly one MapReduce job.
						if _, err := gepeto.KMeansMR(tk.Engine(), []string{"data"}, uniq("w"), gepeto.KMeansOptions{
							K: 11, Distance: metric, MaxIter: 1, Seed: 1,
						}); err != nil {
							b.Fatal(err)
						}
					}
					reportRecordsPerSec(b, int64(ds.NumTraces()))
				})
			}
		}
	}
}

// BenchmarkKMeansCombinerAblation isolates the §VI combiner
// optimisation: identical iterations with and without map-side
// partial sums, reporting shuffled bytes.
func BenchmarkKMeansCombinerAblation(b *testing.B) {
	for _, useComb := range []bool{false, true} {
		name := "no-combiner"
		if useComb {
			name = "with-combiner"
		}
		b.Run(name, func(b *testing.B) {
			tk, ds := newBenchToolkit(b, 2<<20)
			b.ResetTimer()
			var shuffle int64
			for i := 0; i < b.N; i++ {
				res, err := gepeto.KMeansMR(tk.Engine(), []string{"data"}, uniq("w"), gepeto.KMeansOptions{
					K: 11, Distance: geo.MetricSquaredEuclidean, MaxIter: 1, Seed: 1, UseCombiner: useComb,
				})
				if err != nil {
					b.Fatal(err)
				}
				shuffle = res.IterationResults[0].Counters.Value("shuffle", "shuffle_bytes")
			}
			b.ReportMetric(float64(shuffle), "shuffle-bytes")
			reportRecordsPerSec(b, int64(ds.NumTraces()))
		})
	}
}

// BenchmarkFig4_KMeansWorkflow times a full convergence run (the
// Fig. 4 loop: one MapReduce job per iteration until stable).
func BenchmarkFig4_KMeansWorkflow(b *testing.B) {
	tk, ds := newBenchToolkit(b, 2<<20)
	b.ResetTimer()
	var iters int
	for i := 0; i < b.N; i++ {
		res, err := gepeto.KMeansMR(tk.Engine(), []string{"data"}, uniq("w"), gepeto.KMeansOptions{
			K: 11, Distance: geo.MetricSquaredEuclidean, MaxIter: 25, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		iters = res.Iterations
	}
	b.ReportMetric(float64(iters), "iterations")
	reportRecordsPerSec(b, int64(ds.NumTraces()))
}

// BenchmarkFig5_Preprocess measures the two pipelined map-only jobs of
// DJ-Cluster's preprocessing phase on the 1-min-sampled corpus.
func BenchmarkFig5_Preprocess(b *testing.B) {
	tk, _ := newBenchToolkit(b, 1<<20)
	sres, err := tk.Sample("data", "sampled", time.Minute, gepeto.SampleUpperLimit)
	if err != nil {
		b.Fatal(err)
	}
	sampled := sres.Counters.Value("task", "map_output_records")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s1, s2 := uniq("f1"), uniq("f2")
		if _, err := tk.Engine().RunPipeline(
			gepeto.SpeedFilterJob("speed", []string{"sampled"}, s1, 2.0),
			gepeto.DedupJob("dedup", []string{s1}, s2, 1.0),
		); err != nil {
			b.Fatal(err)
		}
	}
	reportRecordsPerSec(b, sampled)
}

// BenchmarkTableIV_Preprocess measures preprocessing on each sampled
// dataset of Table IV, reporting the keep rate of the speed filter.
func BenchmarkTableIV_Preprocess(b *testing.B) {
	for _, window := range []time.Duration{time.Minute, 5 * time.Minute, 10 * time.Minute} {
		b.Run(window.String(), func(b *testing.B) {
			tk, _ := newBenchToolkit(b, 1<<20)
			sres, err := tk.Sample("data", "sampled", window, gepeto.SampleUpperLimit)
			if err != nil {
				b.Fatal(err)
			}
			sampled := sres.Counters.Value("task", "map_output_records")
			b.ResetTimer()
			var keep float64
			for i := 0; i < b.N; i++ {
				s1 := uniq("f1")
				res, err := tk.Engine().Run(gepeto.SpeedFilterJob("speed", []string{"sampled"}, s1, 2.0))
				if err != nil {
					b.Fatal(err)
				}
				in := res.Counters.Value("task", "map_input_records")
				out := res.Counters.Value("task", "map_output_records")
				keep = float64(out) / float64(in)
			}
			b.ReportMetric(keep*100, "keep-%")
			reportRecordsPerSec(b, sampled)
		})
	}
}

// BenchmarkDJClusterPhases times the complete DJ-Cluster pipeline
// (Algs. 4-5 plus preprocessing and R-tree build).
func BenchmarkDJClusterPhases(b *testing.B) {
	tk, _ := newBenchToolkit(b, 1<<20)
	sres, err := tk.Sample("data", "sampled", time.Minute, gepeto.SampleUpperLimit)
	if err != nil {
		b.Fatal(err)
	}
	sampled := sres.Counters.Value("task", "map_output_records")
	b.ResetTimer()
	var clusters int
	for i := 0; i < b.N; i++ {
		res, err := gepeto.DJClusterMR(tk.Engine(), []string{"sampled"}, uniq("dj"), gepeto.DefaultDJClusterOptions())
		if err != nil {
			b.Fatal(err)
		}
		clusters = len(res.Clusters)
	}
	b.ReportMetric(float64(clusters), "clusters")
	reportRecordsPerSec(b, sampled)
}

// BenchmarkFig6_RTreeBuild measures the three-phase MapReduce R-tree
// construction per curve, against the sequential bulk-load baseline.
func BenchmarkFig6_RTreeBuild(b *testing.B) {
	ds, _ := corpus(b)
	for _, curve := range []string{"zorder", "hilbert"} {
		b.Run("mapreduce-"+curve, func(b *testing.B) {
			tk, _ := newBenchToolkit(b, 1<<20)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := gepeto.BuildRTreeMR(tk.Engine(), []string{"data"}, uniq("rt"),
					gepeto.RTreeBuildOptions{Curve: curve, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
			reportRecordsPerSec(b, int64(ds.NumTraces()))
		})
	}
	b.Run("sequential-bulkload", func(b *testing.B) {
		entries := make([]rtree.Entry, 0, ds.NumTraces())
		for _, tr := range ds.Trails {
			for _, t := range tr.Traces {
				entries = append(entries, rtree.Entry{ID: gepeto.TraceID(t), Point: t.Point})
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rtree.BulkLoad(entries, rtree.DefaultMaxEntries)
		}
		reportRecordsPerSec(b, int64(len(entries)))
	})
}

// BenchmarkDeploymentOverhead measures cluster bring-up plus dataset
// upload and chunk replication (the paper's ~25 s HDFS deployment
// overhead, §VI).
func BenchmarkDeploymentOverhead(b *testing.B) {
	ds, _ := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk, err := core.NewToolkit(core.ClusterConfig{
			Nodes: 7, Racks: 2, SlotsPerNode: 4, ChunkSize: 2 << 20, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := geolife.WriteRecordsConcat(tk.FS(), "data", ds, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeqVsMR_Sampling compares the sequential baseline against
// the MapReduce job for down-sampling (the motivation of §II: single-
// machine analysis of large datasets is slow, so distribute it).
func BenchmarkSeqVsMR_Sampling(b *testing.B) {
	ds, _ := corpus(b)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gepeto.SampleSequential(ds, time.Minute, gepeto.SampleUpperLimit)
		}
		reportRecordsPerSec(b, int64(ds.NumTraces()))
	})
	b.Run("mapreduce", func(b *testing.B) {
		tk, _ := newBenchToolkit(b, 1<<20)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tk.Sample("data", uniq("out"), time.Minute, gepeto.SampleUpperLimit); err != nil {
				b.Fatal(err)
			}
		}
		reportRecordsPerSec(b, int64(ds.NumTraces()))
	})
}

// BenchmarkMMCAttack measures the §VIII extension: building MMC models
// and running the linking attack across 8 users.
func BenchmarkMMCAttack(b *testing.B) {
	ds, truth := corpus(b)
	users := len(ds.Trails)
	if users > 8 {
		users = 8
	}
	var known, anon []*privacy.MMC
	truthMap := map[string]string{}
	b.Run("build-models", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			known, anon = known[:0], anon[:0]
			for u := 0; u < users; u++ {
				tr := &ds.Trails[u]
				half := len(tr.Traces) / 2
				k, err := privacy.BuildMMC(&trace.Trail{User: tr.User, Traces: tr.Traces[:half]}, truth.POIs(tr.User), 50)
				if err != nil {
					b.Fatal(err)
				}
				a, err := privacy.BuildMMC(&trace.Trail{User: "anon-" + tr.User, Traces: tr.Traces[half:]}, truth.POIs(tr.User), 50)
				if err != nil {
					b.Fatal(err)
				}
				known = append(known, k)
				anon = append(anon, a)
				truthMap[a.User] = tr.User
			}
		}
	})
	b.Run("link", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			res := privacy.LinkByMMC(known, anon, truthMap)
			acc = res.Accuracy()
		}
		b.ReportMetric(acc*100, "accuracy-%")
	})
}

// BenchmarkPOIAttackEndToEnd measures the full inference attack of the
// examples: sample, preprocess, cluster, label (sequential pipeline).
func BenchmarkPOIAttackEndToEnd(b *testing.B) {
	ds, truth := corpus(b)
	b.ResetTimer()
	var recall float64
	for i := 0; i < b.N; i++ {
		sampled := gepeto.SampleSequential(ds, time.Minute, gepeto.SampleUpperLimit)
		_, pre := gepeto.PreprocessSequential(sampled, 2.0, 1.0)
		res := gepeto.DJClusterSequential(pre, gepeto.DefaultDJClusterOptions())
		pois, err := privacy.ExtractPOIs(res, privacy.TraceTimes(pre))
		if err != nil {
			b.Fatal(err)
		}
		recall = privacy.EvaluatePOIAttack(pois, truth, 50).POIRecall
	}
	b.ReportMetric(recall*100, "poi-recall-%")
	reportRecordsPerSec(b, int64(ds.NumTraces()))
}

// BenchmarkSocialLinkDiscovery measures the §II co-location attack as
// two chained MapReduce jobs over the shared corpus.
func BenchmarkSocialLinkDiscovery(b *testing.B) {
	tk, ds := newBenchToolkit(b, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := privacy.DiscoverSocialLinksMR(tk.Engine(), []string{"data"}, uniq("soc"), privacy.SocialOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	reportRecordsPerSec(b, int64(ds.NumTraces()))
}

// BenchmarkMMCPrediction measures next-place prediction evaluation
// (§VIII) over the corpus users.
func BenchmarkMMCPrediction(b *testing.B) {
	raw, truth := corpus(b)
	_, ds := gepeto.PreprocessSequential(raw, 2.0, 1.0)
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		var sum float64
		n := 0
		for j := range ds.Trails {
			tr := &ds.Trails[j]
			half := len(tr.Traces) / 2
			m, err := privacy.BuildMMC(&trace.Trail{User: tr.User, Traces: tr.Traces[:half]}, truth.POIs(tr.User), 50)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := privacy.EvaluatePrediction(m, &trace.Trail{User: tr.User, Traces: tr.Traces[half:]}, 50)
			if err != nil {
				b.Fatal(err)
			}
			sum += rep.Accuracy()
			n++
		}
		acc = sum / float64(n)
	}
	b.ReportMetric(acc*100, "accuracy-%")
}

// shuffleBenchRuns builds the per-partition map output a shuffle sees:
// maps tasks each emit recs records keyed by trace id (skewed so keys
// collide across runs), hash-partitioned over reducers. Returns both
// the raw emission-order runs (the seed shuffle's input) and stable-
// sorted copies (the merge shuffle's input — map tasks sort their spill
// at commit time, so the sort cost lives in the map phase).
func shuffleBenchRuns(maps, recs, reducers int) (raw, sorted [][][]mapreduce.KV) {
	rng := rand.New(rand.NewSource(42))
	raw = make([][][]mapreduce.KV, reducers)
	for p := range raw {
		raw[p] = make([][]mapreduce.KV, maps)
	}
	for m := 0; m < maps; m++ {
		for r := 0; r < recs; r++ {
			k := fmt.Sprintf("trace-%04d", rng.Intn(3000))
			p := 0
			if reducers > 1 {
				p = mapreduce.HashPartition(k, reducers)
			}
			raw[p][m] = append(raw[p][m], mapreduce.KV{Key: k, Value: fmt.Sprintf("v%06d", m*recs+r)})
		}
	}
	sorted = make([][][]mapreduce.KV, reducers)
	for p := range raw {
		sorted[p] = make([][]mapreduce.KV, maps)
		for m := range raw[p] {
			run := append([]mapreduce.KV(nil), raw[p][m]...)
			sort.SliceStable(run, func(i, j int) bool { return run[i].Key < run[j].Key })
			sorted[p][m] = run
		}
	}
	return raw, sorted
}

// seedShufflePartition is the seed engine's shuffle kept as a baseline:
// concatenate a partition's unsorted runs in run order, then stable-
// sort the whole partition by key.
func seedShufflePartition(runs [][]mapreduce.KV) []mapreduce.KV {
	var all []mapreduce.KV
	for _, r := range runs {
		all = append(all, r...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	return all
}

// forEachPartition runs fn over every partition, in parallel when there
// is more than one — mirroring the engine's slot-bounded merge fan-out.
func forEachPartition(reducers int, fn func(p int)) {
	if reducers == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for p := 0; p < reducers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			fn(p)
		}(p)
	}
	wg.Wait()
}

// BenchmarkShuffleMergeSorted measures the engine's current shuffle
// path: a k-way merge of the map tasks' pre-sorted spill runs, one
// merge per reduce partition (parallel across partitions). Compare
// against BenchmarkShuffleSeedConcatSort on the same data.
func BenchmarkShuffleMergeSorted(b *testing.B) {
	const maps, recs = 24, 8000
	for _, reducers := range []int{1, 8} {
		b.Run(fmt.Sprintf("reducers-%d", reducers), func(b *testing.B) {
			raw, sorted := shuffleBenchRuns(maps, recs, reducers)
			// The two shuffles must agree kv for kv before timing anything.
			for p := 0; p < reducers; p++ {
				want := seedShufflePartition(raw[p])
				got := mapreduce.MergeRuns(sorted[p])
				if len(got) != len(want) {
					b.Fatalf("partition %d: merge %d records, seed %d", p, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						b.Fatalf("partition %d record %d: merge %v, seed %v", p, i, got[i], want[i])
					}
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				forEachPartition(reducers, func(p int) {
					mapreduce.MergeRuns(sorted[p])
				})
			}
			b.ReportMetric(float64(maps*recs), "records/op")
		})
	}
}

// BenchmarkShuffleSeedConcatSort measures the seed engine's shuffle on
// identical data: concatenate every partition's unsorted runs and
// stable-sort the whole partition (parallel across partitions, like the
// merge side, so the comparison isolates sort-vs-merge cost).
func BenchmarkShuffleSeedConcatSort(b *testing.B) {
	const maps, recs = 24, 8000
	for _, reducers := range []int{1, 8} {
		b.Run(fmt.Sprintf("reducers-%d", reducers), func(b *testing.B) {
			raw, _ := shuffleBenchRuns(maps, recs, reducers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				forEachPartition(reducers, func(p int) {
					seedShufflePartition(raw[p])
				})
			}
			b.ReportMetric(float64(maps*recs), "records/op")
		})
	}
}

// BenchmarkShuffleRecords measures the per-record shuffle cost of the
// two record encodings on identical logical data: "text" renders keys
// and values with fmt and re-parses them reduce-side (the legacy
// string-job path); "typed" encodes order-preserving recordio binary
// and decodes with the codecs (the typed-job path). Each iteration
// encodes the map runs, spill-sorts them, k-way merges, and decodes
// every merged value — the full record lifecycle across the shuffle.
// The typed variant must allocate less and run faster per record.
func BenchmarkShuffleRecords(b *testing.B) {
	const maps, recs = 8, 4000
	type codec struct {
		name   string
		encode func(id int64, lat, lon float64) mapreduce.KV
		decode func(kv mapreduce.KV) (float64, error)
	}
	for _, c := range []codec{
		{
			name: "text",
			encode: func(id int64, lat, lon float64) mapreduce.KV {
				return mapreduce.KV{
					Key:   fmt.Sprintf("%06d", id),
					Value: fmt.Sprintf("%.6f,%.6f,1", lat, lon),
				}
			},
			decode: func(kv mapreduce.KV) (float64, error) {
				parts := strings.Split(kv.Value, ",")
				if len(parts) != 3 {
					return 0, fmt.Errorf("bad value %q", kv.Value)
				}
				lat, err := strconv.ParseFloat(parts[0], 64)
				if err != nil {
					return 0, err
				}
				lon, err := strconv.ParseFloat(parts[1], 64)
				if err != nil {
					return 0, err
				}
				return lat + lon, nil
			},
		},
		{
			name: "typed",
			// Scratch buffers mirror the typed emit wrapper, which
			// reuses its encode buffers across records and allocates
			// only the final key/value strings.
			encode: func() func(id int64, lat, lon float64) mapreduce.KV {
				var kbuf, vbuf []byte
				return func(id int64, lat, lon float64) mapreduce.KV {
					kbuf = (recordio.Int64{}).Append(kbuf[:0], id)
					vbuf = (recordio.PointSumCodec{}).Append(vbuf[:0], recordio.PointSum{LatSum: lat, LonSum: lon, N: 1})
					return mapreduce.KV{Key: string(kbuf), Value: string(vbuf)}
				}
			}(),
			decode: func(kv mapreduce.KV) (float64, error) {
				ps, err := (recordio.PointSumCodec{}).Decode(kv.Value)
				if err != nil {
					return 0, err
				}
				return ps.LatSum + ps.LonSum, nil
			},
		},
	} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(7))
				runs := make([][]mapreduce.KV, maps)
				for m := range runs {
					run := make([]mapreduce.KV, 0, recs)
					for r := 0; r < recs; r++ {
						id := int64(rng.Intn(3000))
						run = append(run, c.encode(id, 39+rng.Float64(), 116+rng.Float64()))
					}
					sort.SliceStable(run, func(i, j int) bool { return run[i].Key < run[j].Key })
					runs[m] = run
				}
				merged := mapreduce.MergeRuns(runs)
				if len(merged) != maps*recs {
					b.Fatalf("merge produced %d records, want %d", len(merged), maps*recs)
				}
				var sum float64
				for _, kv := range merged {
					v, err := c.decode(kv)
					if err != nil {
						b.Fatal(err)
					}
					sum += v
				}
				if sum == 0 {
					b.Fatal("decode produced no data")
				}
			}
			b.ReportMetric(float64(maps*recs), "records/op")
		})
	}
}

// BenchmarkShuffleJob runs a full multi-chunk, multi-reducer job end to
// end — one k-means iteration with the combiner disabled, so every map
// output record crosses the shuffle — the integration-level view of the
// map-side spill sort, parallel per-partition merge and streaming
// reduce.
func BenchmarkShuffleJob(b *testing.B) {
	tk, ds := newBenchToolkit(b, 256<<10)
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		res, err := gepeto.KMeansMR(tk.Engine(), []string{"data"}, uniq("w"), gepeto.KMeansOptions{
			K: 11, Distance: geo.MetricSquaredEuclidean, MaxIter: 1, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		bytes = res.IterationResults[0].Counters.Value("shuffle", "shuffle_bytes")
	}
	b.ReportMetric(float64(bytes), "shuffle-bytes")
	reportRecordsPerSec(b, int64(ds.NumTraces()))
}

// BenchmarkEngine measures the observability layer's overhead on a
// representative job: the same down-sampling run with no event sinks
// attached versus the full tracker + metrics pipeline a live status
// server would drive. The instrumented run must stay within a few
// percent of the bare one — events are constructed only behind a
// bus.Active() check.
func BenchmarkEngine(b *testing.B) {
	for _, v := range []struct {
		name string
		bus  func() *obs.Bus
	}{
		{"no-sink", func() *obs.Bus { return nil }},
		{"with-sink", func() *obs.Bus {
			return obs.NewBus(obs.NewTracker(), obs.NewMetricsSink(obs.NewRegistry()))
		}},
	} {
		b.Run(v.name, func(b *testing.B) {
			ds, _ := corpus(b)
			tk, err := core.NewToolkit(core.ClusterConfig{
				Nodes: 7, Racks: 2, SlotsPerNode: 4, ChunkSize: 2 << 20, Seed: 1,
				Obs: v.bus(),
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := geolife.WriteRecordsConcat(tk.FS(), "data", ds, 2); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tk.Sample("data", uniq("out"), time.Minute, gepeto.SampleUpperLimit); err != nil {
					b.Fatal(err)
				}
			}
			reportRecordsPerSec(b, int64(ds.NumTraces()))
		})
	}
}
